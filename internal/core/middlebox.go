package core

import (
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// MiddleboxConfig parameterises an inline compare — the §IX alternative
// architecture: "implement the compare function inband, as a middlebox
// or NFV function".
type MiddleboxConfig struct {
	// Name is the node name.
	Name string
	// K is the combiner parallelism; copies arrive VLAN-labelled with
	// TagBase+routerIndex (the trusted edge applies the label so the
	// middlebox can attribute copies to routers — without attribution a
	// single router could fake a majority by sending k copies).
	K int
	// TagBase is the first attribution VLAN id (default 101).
	TagBase uint16
	// Engine configures the decision core (Engine.K forced to K).
	Engine Config
	// PerCopyCost is the compare CPU cost per copy; QueueLimit bounds
	// the ingest queue.
	PerCopyCost time.Duration
	QueueLimit  int
}

// MiddleboxStats counts middlebox activity.
type MiddleboxStats struct {
	// Combined counts packets released toward the host side;
	// PassedThrough counts host-side packets forwarded unmodified.
	Combined      uint64
	PassedThrough uint64
	// Unattributed counts network-side packets without a valid
	// attribution label (never combined — see MiddleboxConfig.K).
	Unattributed uint64
}

// Middlebox ports.
const (
	// MiddleboxNetPort faces the combiner (tagged copies in, plain
	// traffic out); MiddleboxHostPort faces the protected host.
	MiddleboxNetPort  = 0
	MiddleboxHostPort = 1
)

// Middlebox is a bump-in-the-wire compare: copies flow *through* it
// rather than detouring to an out-of-band server, so it adds no extra
// links, and each direction of a connection is served by its own
// middlebox CPU. It is the efficient alternative the paper's conclusion
// anticipates; the InlineCombiner experiments quantify the gain.
type Middlebox struct {
	cfg   MiddleboxConfig
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	engine *Engine
	// wireBuf is marshal scratch; the engine copies ingested wire bytes,
	// so the buffer is reused across copies.
	wireBuf []byte

	// OnAlarm receives DoS / silence alarms from the engine.
	OnAlarm func(Alarm)

	stats      MiddleboxStats
	sweepTimer sim.Timer
}

var _ netem.Node = (*Middlebox)(nil)

// NewMiddlebox creates an inline compare and starts its expiry sweep;
// Close stops it.
func NewMiddlebox(sched *sim.Scheduler, cfg MiddleboxConfig) *Middlebox {
	if cfg.TagBase == 0 {
		cfg.TagBase = 101
	}
	cfg.Engine.K = cfg.K
	m := &Middlebox{
		cfg:    cfg,
		sched:  sched,
		proc:   netem.NewProc(sched, cfg.PerCopyCost, cfg.QueueLimit),
		engine: NewEngine(cfg.Engine),
	}
	m.scheduleSweep()
	return m
}

// Name implements netem.Node.
func (m *Middlebox) Name() string { return m.cfg.Name }

// Ports implements netem.Node.
func (m *Middlebox) Ports() *netem.Ports { return &m.ports }

// Stats returns the middlebox counters.
func (m *Middlebox) Stats() MiddleboxStats { return m.stats }

// EngineStats returns the decision core's counters.
func (m *Middlebox) EngineStats() Stats { return m.engine.Stats() }

// Close stops the periodic sweep.
func (m *Middlebox) Close() {
	m.sweepTimer.Stop()
	m.sweepTimer = sim.Timer{}
}

func (m *Middlebox) scheduleSweep() {
	m.sweepTimer = m.sched.After(m.engine.Config().HoldTimeout/2, func() {
		m.handleEvents(m.engine.Expire(m.sched.Now()))
		m.scheduleSweep()
	})
}

// Receive implements netem.Receiver.
func (m *Middlebox) Receive(port int, pkt *packet.Packet) {
	switch port {
	case MiddleboxHostPort:
		// Host-to-network traffic is not ours to vote on; pass it.
		m.stats.PassedThrough++
		m.ports.Send(MiddleboxNetPort, pkt)
	case MiddleboxNetPort:
		if !m.proc.SubmitArgs(middleboxCombine, m, pkt, 0) {
			return
		}
	}
}

func middleboxCombine(a0, a1 any, _ int) {
	a0.(*Middlebox).combine(a1.(*packet.Packet))
}

func (m *Middlebox) combine(pkt *packet.Packet) {
	idx := -1
	if pkt.Eth.VLAN != nil {
		if d := int(pkt.Eth.VLAN.VID) - int(m.cfg.TagBase); d >= 0 && d < m.cfg.K {
			idx = d
		}
	}
	if idx < 0 {
		m.stats.Unattributed++
		return
	}
	stripped := pkt.Clone()
	stripped.Eth.VLAN = nil
	m.wireBuf = stripped.MarshalInto(m.wireBuf[:0])
	m.handleEvents(m.engine.Ingest(m.sched.Now(), idx, m.wireBuf, stripped))
	if m.engine.OverCapacity() {
		events, scanned := m.engine.Cleanup(m.sched.Now())
		if scanned > 0 {
			m.proc.Stall(time.Duration(scanned) * 500 * time.Nanosecond)
		}
		m.handleEvents(events)
	}
}

func (m *Middlebox) handleEvents(events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EventRelease:
			m.stats.Combined++
			m.ports.Send(MiddleboxHostPort, ev.Pkt)
		case EventDoS, EventPortSilent, EventDetection:
			if m.OnAlarm != nil {
				m.OnAlarm(Alarm{Kind: ev.Kind, Router: ev.Port, At: m.sched.Now(), Copies: ev.Copies})
			}
		}
	}
}
