package core

import (
	"sort"
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// CompareNodeConfig parameterises the data-plane compare deployment — the
// stand-in for the paper's dedicated C process on host h3.
type CompareNodeConfig struct {
	// Name is the node name.
	Name string
	// Engine is the decision-core configuration.
	Engine Config
	// PerCopyCost is the CPU time to receive, hash and match one copy
	// (the memcmp path of the C prototype). It is the resource that
	// bounds Central3/Central5 throughput in the evaluation.
	PerCopyCost time.Duration
	// QueueLimit bounds the ingest queue in copies (zero = unbounded).
	QueueLimit int
	// NoBufferIsolation disables the per-router ingest quota. The paper
	// requires isolation ("In order to prevent resource attacks on this
	// structure, the different buffers should be (logically) isolated",
	// §IV): with isolation on (the default), one router can occupy at
	// most QueueLimit/K of the ingest queue, so a flooding router cannot
	// crowd out the honest majority's copies. The flag exists for the
	// ablation that demonstrates the attack.
	NoBufferIsolation bool
	// CleanupPerEntry is the CPU stall charged per cache entry scanned
	// by a cleanup pass — the jitter mechanism of Fig. 8.
	CleanupPerEntry time.Duration
	// BlockDuration is how long a DoS-flagged router port is blocked at
	// the edge (§IV case 2). Zero disables blocking.
	BlockDuration time.Duration
	// SweepInterval is the period of the expiry sweep (default:
	// HoldTimeout / 2).
	SweepInterval time.Duration
}

// Alarm is a security event surfaced to the operator.
type Alarm struct {
	Kind   EventKind
	Edge   int
	Router int
	At     time.Duration
	Copies int
}

// CompareStats aggregates node-level counters on top of the engine's.
type CompareStats struct {
	// IngestDrops counts copies lost to a full ingest queue;
	// QuotaDrops those rejected by a single port's isolation quota.
	IngestDrops uint64
	QuotaDrops  uint64
	// Blocks counts block advisories sent to edges.
	Blocks uint64
	// Alarms counts alarms raised.
	Alarms uint64
	// DownDrops counts copies that arrived while the node was crashed.
	DownDrops uint64
	// Crashes and Restarts count lifecycle transitions.
	Crashes  uint64
	Restarts uint64
}

// CompareNode is the compare element deployed in the data plane, attached
// to the combiner's edges over dedicated links. Node port i must connect
// to the edge with EdgeID i; each direction of the combiner gets its own
// engine (the frames of the two directions can never match anyway), while
// the CPU (one Proc) is shared, as in the single-process C prototype.
type CompareNode struct {
	cfg   CompareNodeConfig
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	engines map[int]*Engine
	edges   map[int]*EdgeSwitch
	// backlog tracks the per-(edge, router) ingest backlog, indexed
	// densely by edgeID*2*MaxK + compare ingress port and grown on
	// demand — the map it replaces cost a hashed lookup plus write per
	// copy on the hottest path in the simulator.
	backlog []int32

	// OnAlarm, when non-nil, receives port-silence and detection alarms
	// ("this raises an alarm to the network administrator", §IV).
	OnAlarm func(Alarm)

	// OnRelease, when non-nil, observes every frame the compare releases
	// back toward an edge, before encapsulation. The wire slice aliases
	// engine-owned storage and is only valid for the duration of the
	// call; observers must copy what they keep. The harness's invariant
	// oracles tap the egress stream here.
	OnRelease func(edgeID int, wire []byte)

	// framePool recycles the PacketOut frames sent back to the edges;
	// the edge recycles them after decapsulating the release.
	framePool packet.Pool

	stats      CompareStats
	sweepTimer sim.Timer

	// down is the crash state; flushed accumulates the engine counters of
	// directions whose caches a restart discarded, so EngineStats stays an
	// observation of the whole run.
	down    bool
	flushed Stats
}

var _ netem.Node = (*CompareNode)(nil)

// NewCompareNode creates a compare and starts its periodic expiry sweep.
// Call Close when discarding the node before the simulation ends.
func NewCompareNode(sched *sim.Scheduler, cfg CompareNodeConfig) *CompareNode {
	cfg.Engine = cfg.Engine.withDefaults()
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = cfg.Engine.HoldTimeout / 2
	}
	c := &CompareNode{
		cfg:     cfg,
		sched:   sched,
		proc:    netem.NewProc(sched, cfg.PerCopyCost, cfg.QueueLimit),
		engines: make(map[int]*Engine),
		edges:   make(map[int]*EdgeSwitch),
	}
	c.scheduleSweep()
	return c
}

// Name implements netem.Node.
func (c *CompareNode) Name() string { return c.cfg.Name }

// Ports implements netem.Node.
func (c *CompareNode) Ports() *netem.Ports { return &c.ports }

// Stats returns node-level counters.
func (c *CompareNode) Stats() CompareStats { return c.stats }

// EngineStats returns the merged engine counters across directions,
// including those of cache generations flushed by a restart.
func (c *CompareNode) EngineStats() Stats {
	total := c.flushed
	for _, e := range c.engines {
		addEngineStats(&total, e.Stats())
	}
	return total
}

func addEngineStats(total *Stats, s Stats) {
	total.Ingested += s.Ingested
	total.Released += s.Released
	total.LateCopies += s.LateCopies
	total.Suppressed += s.Suppressed
	total.DoSFlagged += s.DoSFlagged
	total.Detections += s.Detections
	total.CleanupPasses += s.CleanupPasses
	total.CleanupScanned += s.CleanupScanned
}

// RegisterEdge associates an edge with the node port of the same index so
// that block advisories can be delivered. It must be called for each edge
// after wiring.
func (c *CompareNode) RegisterEdge(edgeID int, edge *EdgeSwitch) {
	c.edges[edgeID] = edge
}

// Close stops the periodic sweep.
func (c *CompareNode) Close() {
	c.sweepTimer.Stop()
	c.sweepTimer = sim.Timer{}
}

// Crash models the compare process dying: copies arriving while down are
// dropped, everything queued for the CPU dies with it, and the periodic
// expiry sweep stops. The match caches are flushed on Restart, not here —
// a dead process holds no state either way, but flushing late keeps the
// engine counters intact until they are folded into the run totals.
func (c *CompareNode) Crash() {
	if c.down {
		return
	}
	c.down = true
	c.stats.Crashes++
	c.proc.Reset()
	for i := range c.backlog {
		c.backlog[i] = 0
	}
	c.sweepTimer.Stop()
	c.sweepTimer = sim.Timer{}
}

// Restart brings the compare back with flushed caches: every direction's
// engine — held copies, match state, DoS counters — is discarded and will
// be recreated empty on first ingest (counters are folded into the run
// totals first), the per-router quotas are clear, and the expiry sweep
// re-arms. Packets whose copies died in the flush are simply lost; the
// sources retransmit, which is the recovery the availability oracles
// measure.
func (c *CompareNode) Restart() {
	if !c.down {
		return
	}
	c.down = false
	c.stats.Restarts++
	for id, eng := range c.engines {
		addEngineStats(&c.flushed, eng.Stats())
		delete(c.engines, id)
	}
	c.scheduleSweep()
}

// IsDown reports whether the node is crashed.
func (c *CompareNode) IsDown() bool { return c.down }

func (c *CompareNode) scheduleSweep() {
	c.sweepTimer = c.sched.After(c.cfg.SweepInterval, func() {
		now := c.sched.Now()
		// Expire in ascending edge order: ranging over the map directly
		// would randomise the relative order of the two directions'
		// expiry events (and thus alarm order) from run to run.
		for _, edgeID := range c.edgeIDs() {
			eng := c.engines[edgeID]
			c.handleEvents(edgeID, eng, eng.Expire(now))
		}
		c.scheduleSweep()
	})
}

// edgeIDs returns the engine keys in ascending order.
func (c *CompareNode) edgeIDs() []int {
	ids := make([]int, 0, len(c.engines))
	for id := range c.engines {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (c *CompareNode) engineFor(edgeID int) *Engine {
	eng, ok := c.engines[edgeID]
	if !ok {
		eng = NewEngine(c.cfg.Engine)
		c.engines[edgeID] = eng
	}
	return eng
}

// Receive implements netem.Receiver: node port = edge id; the frame is a
// compare-channel PacketIn.
//
// The decapsulated wire bytes are threaded straight through to the engine:
// copies are hashed and byte-compared from the bytes the edge already
// marshalled, never re-marshalled (and, outside ModeHeader, never
// re-parsed).
//
// Quota accounting is increment-after-accept: backlog[quotaKey]++ runs
// after Submit returns true, and the decrement runs inside the submitted
// closure. The scheduler is a single logical thread — Submit only enqueues
// a future event, it never runs the closure synchronously — so the closure
// (and its decrement) cannot fire between the accept and the increment,
// and the counter exactly tracks copies in flight. CompareNodeQuota tests
// pin this down.
func (c *CompareNode) Receive(port int, frame *packet.Packet) {
	if c.down {
		c.stats.DownDrops++
		packet.Recycle(frame)
		return
	}
	inPort, _, err := decapPacketIn(frame)
	if err != nil {
		return
	}
	quotaKey := port*2*MaxK + inPort
	if quotaKey >= len(c.backlog) {
		c.backlog = append(c.backlog, make([]int32, quotaKey+1-len(c.backlog))...)
	}
	if !c.cfg.NoBufferIsolation && c.cfg.QueueLimit > 0 && c.cfg.Engine.K > 0 {
		if int(c.backlog[quotaKey]) >= c.cfg.QueueLimit/c.cfg.Engine.K {
			c.stats.QuotaDrops++
			packet.Recycle(frame)
			return
		}
	}
	if !c.proc.SubmitArgs(compareServe, c, frame, port) {
		c.stats.IngestDrops++
		packet.Recycle(frame)
		return
	}
	c.backlog[quotaKey]++
}

// compareServe is the deferred half of Receive. It re-decapsulates the
// frame (a header parse over bytes already in cache — cheaper than
// carrying the decoded form through an allocation), runs the decrement
// half of the quota accounting, and finally recycles the encapsulation
// frame: the engine copies the wire bytes it keeps, so the frame's
// point-to-point life ends here.
func compareServe(a0, a1 any, port int) {
	c := a0.(*CompareNode)
	frame := a1.(*packet.Packet)
	inPort, wire, err := decapPacketIn(frame)
	if err != nil {
		return
	}
	c.backlog[port*2*MaxK+inPort]--
	c.ingest(port, inPort, wire)
	packet.Recycle(frame)
}

func (c *CompareNode) ingest(edgeID, inPort int, wire []byte) {
	routerIdx := inPort % MaxK
	eng := c.engineFor(edgeID)
	var pkt *packet.Packet
	if c.cfg.Engine.Mode == ModeHeader {
		// Header keys are computed from parsed fields; this is the only
		// mode that still needs the copy in parsed form.
		parsed, err := packet.Unmarshal(wire)
		if err != nil {
			return
		}
		pkt = parsed
	}
	now := c.sched.Now()
	events := eng.Ingest(now, routerIdx, wire, pkt)
	c.handleEvents(edgeID, eng, events)

	if eng.OverCapacity() {
		cleanupEvents, scanned := eng.Cleanup(now)
		if scanned > 0 && c.cfg.CleanupPerEntry > 0 {
			c.proc.Stall(time.Duration(scanned) * c.cfg.CleanupPerEntry)
		}
		c.handleEvents(edgeID, eng, cleanupEvents)
	}
}

func (c *CompareNode) handleEvents(edgeID int, eng *Engine, events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EventRelease:
			// "A single copy of the packet is sent back to the switch,
			// which then forwards it according to the decision the
			// majority of the r_i made" (§IV). The engine hands back the
			// stored wire form, so the release path is a copy, not a
			// re-marshal.
			if c.OnRelease != nil {
				c.OnRelease(edgeID, ev.Wire)
			}
			out := encapPacketOutInto(c.framePool.Get(), ev.Wire)
			if !c.ports.Send(edgeID, out) {
				packet.Recycle(out)
			}
		case EventDoS:
			if c.cfg.BlockDuration > 0 {
				if edge := c.edges[edgeID]; edge != nil {
					edge.BlockRouter(ev.Port, c.cfg.BlockDuration)
					c.stats.Blocks++
				}
			}
			c.alarm(Alarm{Kind: EventDoS, Edge: edgeID, Router: ev.Port, At: c.sched.Now(), Copies: ev.Copies})
		case EventPortSilent:
			c.alarm(Alarm{Kind: EventPortSilent, Edge: edgeID, Router: ev.Port, At: c.sched.Now()})
		case EventDetection:
			c.alarm(Alarm{Kind: EventDetection, Edge: edgeID, Router: ev.Port, At: c.sched.Now(), Copies: ev.Copies})
		case EventSuppressed:
			// Suppressed packets simply never leave the compare; the
			// engine's counters record them.
		}
	}
}

func (c *CompareNode) alarm(a Alarm) {
	c.stats.Alarms++
	if c.OnAlarm != nil {
		c.OnAlarm(a)
	}
}
