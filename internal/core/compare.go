package core

import (
	"time"

	"netco/internal/netem"
	"netco/internal/packet"
	"netco/internal/sim"
)

// CompareNodeConfig parameterises the data-plane compare deployment — the
// stand-in for the paper's dedicated C process on host h3.
type CompareNodeConfig struct {
	// Name is the node name.
	Name string
	// Engine is the decision-core configuration.
	Engine Config
	// PerCopyCost is the CPU time to receive, hash and match one copy
	// (the memcmp path of the C prototype). It is the resource that
	// bounds Central3/Central5 throughput in the evaluation.
	PerCopyCost time.Duration
	// QueueLimit bounds the ingest queue in copies (zero = unbounded).
	QueueLimit int
	// NoBufferIsolation disables the per-router ingest quota. The paper
	// requires isolation ("In order to prevent resource attacks on this
	// structure, the different buffers should be (logically) isolated",
	// §IV): with isolation on (the default), one router can occupy at
	// most QueueLimit/K of the ingest queue, so a flooding router cannot
	// crowd out the honest majority's copies. The flag exists for the
	// ablation that demonstrates the attack.
	NoBufferIsolation bool
	// CleanupPerEntry is the CPU stall charged per cache entry scanned
	// by a cleanup pass — the jitter mechanism of Fig. 8.
	CleanupPerEntry time.Duration
	// BlockDuration is how long a DoS-flagged router port is blocked at
	// the edge (§IV case 2). Zero disables blocking.
	BlockDuration time.Duration
	// SweepInterval is the period of the expiry sweep (default:
	// HoldTimeout / 2).
	SweepInterval time.Duration
}

// Alarm is a security event surfaced to the operator.
type Alarm struct {
	Kind   EventKind
	Edge   int
	Router int
	At     time.Duration
	Copies int
}

// CompareStats aggregates node-level counters on top of the engine's.
type CompareStats struct {
	// IngestDrops counts copies lost to a full ingest queue;
	// QuotaDrops those rejected by a single port's isolation quota.
	IngestDrops uint64
	QuotaDrops  uint64
	// Blocks counts block advisories sent to edges.
	Blocks uint64
	// Alarms counts alarms raised.
	Alarms uint64
}

// CompareNode is the compare element deployed in the data plane, attached
// to the combiner's edges over dedicated links. Node port i must connect
// to the edge with EdgeID i; each direction of the combiner gets its own
// engine (the frames of the two directions can never match anyway), while
// the CPU (one Proc) is shared, as in the single-process C prototype.
type CompareNode struct {
	cfg   CompareNodeConfig
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	engines map[int]*Engine
	edges   map[int]*EdgeSwitch
	backlog map[int]int // per (edge*MaxK+router) ingest backlog

	// OnAlarm, when non-nil, receives port-silence and detection alarms
	// ("this raises an alarm to the network administrator", §IV).
	OnAlarm func(Alarm)

	stats      CompareStats
	sweepTimer *sim.Timer
}

var _ netem.Node = (*CompareNode)(nil)

// NewCompareNode creates a compare and starts its periodic expiry sweep.
// Call Close when discarding the node before the simulation ends.
func NewCompareNode(sched *sim.Scheduler, cfg CompareNodeConfig) *CompareNode {
	cfg.Engine = cfg.Engine.withDefaults()
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = cfg.Engine.HoldTimeout / 2
	}
	c := &CompareNode{
		cfg:     cfg,
		sched:   sched,
		proc:    netem.NewProc(sched, cfg.PerCopyCost, cfg.QueueLimit),
		engines: make(map[int]*Engine),
		edges:   make(map[int]*EdgeSwitch),
		backlog: make(map[int]int),
	}
	c.scheduleSweep()
	return c
}

// Name implements netem.Node.
func (c *CompareNode) Name() string { return c.cfg.Name }

// Ports implements netem.Node.
func (c *CompareNode) Ports() *netem.Ports { return &c.ports }

// Stats returns node-level counters.
func (c *CompareNode) Stats() CompareStats { return c.stats }

// EngineStats returns the merged engine counters across directions.
func (c *CompareNode) EngineStats() Stats {
	var total Stats
	for _, e := range c.engines {
		s := e.Stats()
		total.Ingested += s.Ingested
		total.Released += s.Released
		total.LateCopies += s.LateCopies
		total.Suppressed += s.Suppressed
		total.DoSFlagged += s.DoSFlagged
		total.Detections += s.Detections
		total.CleanupPasses += s.CleanupPasses
		total.CleanupScanned += s.CleanupScanned
	}
	return total
}

// RegisterEdge associates an edge with the node port of the same index so
// that block advisories can be delivered. It must be called for each edge
// after wiring.
func (c *CompareNode) RegisterEdge(edgeID int, edge *EdgeSwitch) {
	c.edges[edgeID] = edge
}

// Close stops the periodic sweep.
func (c *CompareNode) Close() {
	if c.sweepTimer != nil {
		c.sweepTimer.Stop()
		c.sweepTimer = nil
	}
}

func (c *CompareNode) scheduleSweep() {
	c.sweepTimer = c.sched.After(c.cfg.SweepInterval, func() {
		now := c.sched.Now()
		for edgeID, eng := range c.engines {
			c.handleEvents(edgeID, eng, eng.Expire(now))
		}
		c.scheduleSweep()
	})
}

func (c *CompareNode) engineFor(edgeID int) *Engine {
	eng, ok := c.engines[edgeID]
	if !ok {
		eng = NewEngine(c.cfg.Engine)
		c.engines[edgeID] = eng
	}
	return eng
}

// Receive implements netem.Receiver: node port = edge id; the frame is a
// compare-channel PacketIn.
func (c *CompareNode) Receive(port int, frame *packet.Packet) {
	inPort, pkt, err := decapPacketIn(frame)
	if err != nil {
		return
	}
	quotaKey := port*2*MaxK + inPort
	if !c.cfg.NoBufferIsolation && c.cfg.QueueLimit > 0 && c.cfg.Engine.K > 0 {
		if c.backlog[quotaKey] >= c.cfg.QueueLimit/c.cfg.Engine.K {
			c.stats.QuotaDrops++
			return
		}
	}
	if !c.proc.Submit(func() {
		c.backlog[quotaKey]--
		c.ingest(port, inPort, pkt)
	}) {
		c.stats.IngestDrops++
		return
	}
	c.backlog[quotaKey]++
}

func (c *CompareNode) ingest(edgeID, inPort int, pkt *packet.Packet) {
	routerIdx := inPort % MaxK
	eng := c.engineFor(edgeID)
	now := c.sched.Now()
	events := eng.Ingest(now, routerIdx, pkt.Marshal(), pkt)
	c.handleEvents(edgeID, eng, events)

	if eng.OverCapacity() {
		cleanupEvents, scanned := eng.Cleanup(now)
		if scanned > 0 && c.cfg.CleanupPerEntry > 0 {
			c.proc.Stall(time.Duration(scanned) * c.cfg.CleanupPerEntry)
		}
		c.handleEvents(edgeID, eng, cleanupEvents)
	}
}

func (c *CompareNode) handleEvents(edgeID int, eng *Engine, events []Event) {
	for _, ev := range events {
		switch ev.Kind {
		case EventRelease:
			// "A single copy of the packet is sent back to the switch,
			// which then forwards it according to the decision the
			// majority of the r_i made" (§IV).
			c.ports.Send(edgeID, encapPacketOut(ev.Pkt))
		case EventDoS:
			if c.cfg.BlockDuration > 0 {
				if edge := c.edges[edgeID]; edge != nil {
					edge.BlockRouter(ev.Port, c.cfg.BlockDuration)
					c.stats.Blocks++
				}
			}
			c.alarm(Alarm{Kind: EventDoS, Edge: edgeID, Router: ev.Port, At: c.sched.Now(), Copies: ev.Copies})
		case EventPortSilent:
			c.alarm(Alarm{Kind: EventPortSilent, Edge: edgeID, Router: ev.Port, At: c.sched.Now()})
		case EventDetection:
			c.alarm(Alarm{Kind: EventDetection, Edge: edgeID, Router: ev.Port, At: c.sched.Now(), Copies: ev.Copies})
		case EventSuppressed:
			// Suppressed packets simply never leave the compare; the
			// engine's counters record them.
		}
	}
}

func (c *CompareNode) alarm(a Alarm) {
	c.stats.Alarms++
	if c.OnAlarm != nil {
		c.OnAlarm(a)
	}
}
