package core

import (
	"fmt"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
)

// MaxK bounds the number of parallel routers per combiner; compare ingress
// port numbers are computed as edgeID*MaxK + routerIndex.
const MaxK = 8

// EtherTypeNetCo tags the encapsulated compare-channel frames exchanged
// between an EdgeSwitch and the CompareNode. The payload is an OpenFlow
// 1.0 PacketIn/PacketOut message — the paper's compare "is connected to
// the data plane akin of an OpenFlow controller, using packet-in and
// packet-out messages" (§IV).
const EtherTypeNetCo uint16 = 0x99fe

// EdgeMode selects what an EdgeSwitch does with copies arriving from the
// untrusted routers.
type EdgeMode int

// Edge modes.
const (
	// EdgeModeCompare forwards router copies to the compare and releases
	// only what the compare returns — the full combiner (Central3/5).
	EdgeModeCompare EdgeMode = iota + 1
	// EdgeModeDup forwards every copy directly by MAC table — the
	// reduced design without combining (Dup3/5) and, with k=1, the
	// Linespeed baseline.
	EdgeModeDup
	// EdgeModeInline labels every router copy with an attribution VLAN
	// and forwards it toward the host side, where an inline Middlebox
	// performs the majority vote — the §IX "compare as a middlebox"
	// architecture, with no out-of-band detour.
	EdgeModeInline
	// EdgeModeSample is the §IX future-work design: the primary
	// router's copy is forwarded immediately (no added latency), and a
	// content-deterministic 1-in-SampleRate subset of packets is
	// additionally sent — all copies — to an out-of-band detect-only
	// compare: "a simple logic in the data plane forwards a random
	// subset of packets to a more thorough out-of-band compare logic".
	EdgeModeSample
)

// EdgeConfig parameterises a trusted edge component.
type EdgeConfig struct {
	// Name is the node name; EdgeID distinguishes the two edges of a
	// combiner (0 and 1) and namespaces compare ingress ports.
	Name   string
	EdgeID int
	// Mode selects combiner vs duplicate-only behaviour.
	Mode EdgeMode
	// ProcDelay is the per-packet processing cost of the edge; the
	// paper argues this component is simple enough to be built trusted,
	// so it should be small.
	ProcDelay time.Duration
	// ProcQueue bounds the processing queue (zero = unbounded).
	ProcQueue int
	// SampleRate is the 1-in-N sampling divisor for EdgeModeSample
	// (default 16). Sampling is content-deterministic so all copies of
	// a packet are sampled together.
	SampleRate int
	// TagBase is the first attribution VLAN id for EdgeModeInline
	// (default 101; must match the downstream Middlebox).
	TagBase uint16
}

// EdgeStats counts edge activity.
type EdgeStats struct {
	// Replicated counts copies fanned out to routers.
	Replicated uint64
	// ToCompare counts copies encapsulated toward the compare.
	ToCompare uint64
	// FromCompare counts released packets received back.
	FromCompare uint64
	// SpoofDrops counts packets failing the ingress-port/MAC-source
	// check ("after ensuring its ingress port number matches its MAC
	// source address", §IV).
	SpoofDrops uint64
	// TableMisses counts MAC-table lookup failures.
	TableMisses uint64
	// BlockedDrops counts packets dropped on blocked router ports.
	BlockedDrops uint64
	// Sampled counts packets selected for out-of-band verification
	// (EdgeModeSample).
	Sampled uint64
}

// EdgeSwitch is the trusted component at each side of a combiner (s1/s2
// in Fig. 3). It acts as the hub for packets entering the combiner and
// manages the traffic to and from the compare for packets leaving it. Its
// functionality is deliberately simple so it can plausibly be built as
// trusted hardware (§II).
type EdgeSwitch struct {
	cfg   EdgeConfig
	sched *sim.Scheduler
	ports netem.Ports
	proc  *netem.Proc

	hostMAC     map[int]packet.MAC // host port -> expected source MAC
	hostPorts   []int              // host ports in registration order (deterministic broadcast)
	localMAC    map[packet.MAC]bool
	routerPorts []int
	routerIdx   map[int]int // port -> router index
	comparePort int
	hasCompare  bool
	macTable    map[packet.MAC]int

	blockedUntil map[int]time.Duration // router port index -> blocked until

	// wireBuf is scratch for marshalling frames bound for the compare;
	// encapPacketIn copies it into the encapsulation, so it is reused
	// across packets.
	wireBuf []byte
	// framePool recycles the PacketIn encapsulation frames this edge
	// sends toward the compare; the compare recycles them after ingest.
	framePool packet.Pool

	stats EdgeStats
}

var _ netem.Node = (*EdgeSwitch)(nil)

// NewEdgeSwitch creates an edge component. Ports are declared afterwards
// with AddHostPort, AddRouterPort and SetComparePort, before the network
// is connected.
func NewEdgeSwitch(sched *sim.Scheduler, cfg EdgeConfig) *EdgeSwitch {
	if cfg.Mode == 0 {
		cfg.Mode = EdgeModeCompare
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 16
	}
	if cfg.TagBase == 0 {
		cfg.TagBase = 101
	}
	return &EdgeSwitch{
		cfg:          cfg,
		sched:        sched,
		proc:         netem.NewProc(sched, cfg.ProcDelay, cfg.ProcQueue),
		hostMAC:      make(map[int]packet.MAC),
		localMAC:     make(map[packet.MAC]bool),
		routerIdx:    make(map[int]int),
		macTable:     make(map[packet.MAC]int),
		blockedUntil: make(map[int]time.Duration),
	}
}

// Name implements netem.Node.
func (e *EdgeSwitch) Name() string { return e.cfg.Name }

// Ports implements netem.Node.
func (e *EdgeSwitch) Ports() *netem.Ports { return &e.ports }

// Stats returns the edge counters.
func (e *EdgeSwitch) Stats() EdgeStats { return e.stats }

// AddHostPort declares port as facing a locally attached host with the
// given MAC. Packets from that host enter the combiner here; the MAC also
// populates the edge's forwarding table.
func (e *EdgeSwitch) AddHostPort(port int, mac packet.MAC) {
	if _, dup := e.hostMAC[port]; !dup {
		e.hostPorts = append(e.hostPorts, port)
	}
	e.hostMAC[port] = mac
	e.localMAC[mac] = true
	e.macTable[mac] = port
}

// AddRouterPort declares port as connected to untrusted router index idx
// (0 ≤ idx < MaxK).
func (e *EdgeSwitch) AddRouterPort(port, idx int) {
	if idx < 0 || idx >= MaxK {
		panic(fmt.Sprintf("core: router index %d out of range", idx))
	}
	e.routerPorts = append(e.routerPorts, port)
	e.routerIdx[port] = idx
}

// SetComparePort declares port as the link to the compare.
func (e *EdgeSwitch) SetComparePort(port int) {
	e.comparePort = port
	e.hasCompare = true
}

// AddRoute adds a MAC-table entry for a destination reachable out of the
// given port (used when the "host side" of the edge is further network
// rather than a directly attached host).
func (e *EdgeSwitch) AddRoute(mac packet.MAC, port int) {
	e.macTable[mac] = port
}

// BlockRouter drops traffic from router index idx for d — the response
// the compare advises during a DoS (§IV case 2).
func (e *EdgeSwitch) BlockRouter(idx int, d time.Duration) {
	until := e.sched.Now() + d
	if cur := e.blockedUntil[idx]; until > cur {
		e.blockedUntil[idx] = until
	}
}

// RouterBlocked reports whether router idx is currently blocked.
func (e *EdgeSwitch) RouterBlocked(idx int) bool {
	return e.sched.Now() < e.blockedUntil[idx]
}

// Receive implements netem.Receiver. The argument-carrying submit keeps
// the per-packet edge pipeline allocation-free.
func (e *EdgeSwitch) Receive(port int, pkt *packet.Packet) {
	if !e.proc.SubmitArgs(edgeHandle, e, pkt, port) {
		// Queue overflow at the edge: drop.
		return
	}
}

func edgeHandle(a0, a1 any, port int) {
	a0.(*EdgeSwitch).handle(port, a1.(*packet.Packet))
}

func (e *EdgeSwitch) handle(port int, pkt *packet.Packet) {
	if mac, isHost := e.hostMAC[port]; isHost {
		if pkt.Eth.Src != mac {
			e.stats.SpoofDrops++
			return
		}
		e.fanOut(pkt)
		return
	}
	if idx, isRouter := e.routerIdx[port]; isRouter {
		e.fromRouter(idx, pkt)
		return
	}
	if e.hasCompare && port == e.comparePort {
		e.fromCompare(pkt)
		return
	}
	// Unknown port: treat as host-side network (chained combiners).
	e.fanOut(pkt)
}

// fanOut is the hub half: replicate the packet to every router.
func (e *EdgeSwitch) fanOut(pkt *packet.Packet) {
	for _, p := range e.routerPorts {
		if e.ports.Send(p, pkt) {
			e.stats.Replicated++
		}
	}
}

// fromRouter handles one copy returned by untrusted router idx.
func (e *EdgeSwitch) fromRouter(idx int, pkt *packet.Packet) {
	if e.RouterBlocked(idx) {
		e.stats.BlockedDrops++
		return
	}
	// Ingress validation: a copy claiming to originate from a host that
	// is attached to *this* edge cannot legitimately arrive from a
	// router — it would have to have been reflected or spoofed.
	if e.localMAC[pkt.Eth.Src] {
		e.stats.SpoofDrops++
		return
	}
	switch e.cfg.Mode {
	case EdgeModeDup:
		e.forwardByMAC(pkt)
	case EdgeModeInline:
		// Label the copy with its router attribution and let the inline
		// middlebox vote. Without the label a single router could fake
		// a majority.
		tagged := pkt.Clone()
		tagged.Eth.VLAN = &packet.VLANTag{VID: e.cfg.TagBase + uint16(idx)}
		e.forwardByMAC(tagged)
	case EdgeModeSample:
		// Fast path: the primary candidate's copy goes straight out.
		if idx == 0 {
			e.forwardByMAC(pkt)
		}
		// Thorough path: a deterministic sample of packets (all their
		// copies) goes to the out-of-band detect-only compare.
		e.wireBuf = pkt.MarshalInto(e.wireBuf[:0])
		if packet.FastKey(e.wireBuf)%uint64(e.cfg.SampleRate) == 0 {
			if idx == 0 {
				e.stats.Sampled++
			}
			e.stats.ToCompare++
			e.sendToCompare(idx, e.wireBuf)
		}
	default:
		e.stats.ToCompare++
		e.wireBuf = pkt.MarshalInto(e.wireBuf[:0])
		e.sendToCompare(idx, e.wireBuf)
	}
}

// sendToCompare encapsulates an already-marshalled router copy in a pooled
// frame and transmits it on the compare channel. The wire slice may be
// scratch: the encapsulation copies it.
func (e *EdgeSwitch) sendToCompare(idx int, wire []byte) {
	frame := encapPacketInInto(e.framePool.Get(), e.cfg.EdgeID*MaxK+idx, wire)
	if !e.ports.Send(e.comparePort, frame) {
		packet.Recycle(frame)
	}
}

// fromCompare handles a release returned by the compare.
func (e *EdgeSwitch) fromCompare(frame *packet.Packet) {
	pkt, err := decapPacketOut(frame)
	if err != nil {
		return
	}
	// The release is an independent parse; the encapsulation frame ends
	// its point-to-point life here.
	packet.Recycle(frame)
	e.stats.FromCompare++
	if e.cfg.Mode == EdgeModeSample {
		// Sampled packets were already forwarded on the fast path; the
		// detect-only compare's releases are audit artefacts.
		return
	}
	e.forwardByMAC(pkt)
}

func (e *EdgeSwitch) forwardByMAC(pkt *packet.Packet) {
	if pkt.Eth.Dst.IsBroadcast() {
		// Broadcasts (e.g. ARP requests crossing the combiner) leave
		// toward every protected-side attachment, in registration order —
		// ranging over the hostMAC map here would make delivery order (and
		// hence downstream event order) vary run to run.
		for _, port := range e.hostPorts {
			e.ports.Send(port, pkt)
		}
		return
	}
	port, ok := e.macTable[pkt.Eth.Dst]
	if !ok {
		e.stats.TableMisses++
		return
	}
	e.ports.Send(port, pkt)
}

// encapPacketIn wraps a data-plane frame in the compare channel
// encapsulation: an Ethernet frame whose payload is an OpenFlow PacketIn
// carrying the full original frame and the combiner-wide ingress port.
func encapPacketIn(comparePort int, pkt *packet.Packet) *packet.Packet {
	return encapPacketInInto(&packet.Packet{}, comparePort, pkt.Marshal())
}

// encapPacketInInto is encapPacketIn for a frame already in wire form
// (possibly a scratch buffer — the bytes are copied exactly once, straight
// into the encoded message), built into dst (typically a pooled frame
// whose payload capacity is reused).
func encapPacketInInto(dst *packet.Packet, comparePort int, wire []byte) *packet.Packet {
	msg := openflow.PacketIn{
		BufferID: openflow.NoBuffer,
		TotalLen: uint16(len(wire)),
		InPort:   uint16(comparePort),
		Reason:   openflow.PacketInNoMatch,
		Data:     wire,
	}
	dst.Eth = packet.Ethernet{EtherType: EtherTypeNetCo}
	dst.Payload = openflow.AppendEncode(dst.Payload[:0], msg, 0)
	return dst
}

// decapPacketIn reverses encapPacketIn, yielding the copy's wire bytes.
// Parsing is deliberately left to the caller — the compare's hot modes
// hash and byte-compare the wire form without ever needing a parse. The
// returned wire slice aliases the frame's payload (frames are immutable
// once sent, and the engine copies what it keeps).
func decapPacketIn(frame *packet.Packet) (port int, wire []byte, err error) {
	if frame.Eth.EtherType != EtherTypeNetCo {
		return 0, nil, fmt.Errorf("core: unexpected ethertype %#x on compare channel", frame.Eth.EtherType)
	}
	pin, err := openflow.DecodePacketIn(frame.Payload)
	if err != nil {
		return 0, nil, fmt.Errorf("core: compare channel: %w", err)
	}
	return int(pin.InPort), pin.Data, nil
}

// encapPacketOut wraps a released frame's wire bytes for the trip back to
// the edge.
func encapPacketOut(wire []byte) *packet.Packet {
	return encapPacketOutInto(&packet.Packet{}, wire)
}

// encapPacketOutInto is encapPacketOut building into dst (typically a
// pooled frame).
func encapPacketOutInto(dst *packet.Packet, wire []byte) *packet.Packet {
	msg := openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   openflow.PortNone,
		Actions:  packetOutActions[:],
		Data:     wire,
	}
	dst.Eth = packet.Ethernet{EtherType: EtherTypeNetCo}
	dst.Payload = openflow.AppendEncode(dst.Payload[:0], msg, 0)
	return dst
}

// packetOutActions is the constant action list of every compare release.
var packetOutActions = [1]openflow.Action{openflow.Output(openflow.PortTable)}

// decapPacketOut reverses encapPacketOut.
func decapPacketOut(frame *packet.Packet) (*packet.Packet, error) {
	if frame.Eth.EtherType != EtherTypeNetCo {
		return nil, fmt.Errorf("core: unexpected ethertype %#x on compare channel", frame.Eth.EtherType)
	}
	data, err := openflow.DecodePacketOutData(frame.Payload)
	if err != nil {
		return nil, fmt.Errorf("core: compare channel: %w", err)
	}
	return packet.Unmarshal(data)
}
