package core

import (
	"fmt"
	"time"

	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/switching"
)

// CombinerMode selects the combiner variant under evaluation.
type CombinerMode int

// Combiner modes.
const (
	// CombinerCentral is the full design: hub, k routers, compare
	// (the paper's Central3/Central5 scenarios).
	CombinerCentral CombinerMode = iota + 1
	// CombinerDup splits packets over k routers but never combines them
	// (the paper's reduced Dup3/Dup5 designs).
	CombinerDup
	// CombinerSampling forwards the primary router's copies immediately
	// and verifies a sampled subset on a detect-only compare — the §IX
	// load-reduction design.
	CombinerSampling
	// CombinerInline places the compare inband as a middlebox behind
	// each edge instead of out-of-band: no detour links, and each
	// traffic direction gets its own compare CPU — the §IX "middlebox
	// or NFV function" architecture.
	CombinerInline
)

// EdgeHostPort is the edge port index reserved for the protected-side
// attachment (host or rest of network).
const EdgeHostPort = 0

// CombinerSpec describes how to build one robust combiner between two
// trusted edges.
type CombinerSpec struct {
	// NamePrefix namespaces the node names ("s1", "s2", "r0"... get the
	// prefix prepended).
	NamePrefix string
	// K is the number of parallel untrusted routers.
	K int
	// Mode selects Central (with compare) or Dup (without).
	Mode CombinerMode
	// Compare configures the compare node (Central mode only; Engine.K
	// is forced to K).
	Compare CompareNodeConfig
	// EdgeProcDelay and EdgeProcQueue configure the trusted edges.
	EdgeProcDelay time.Duration
	EdgeProcQueue int
	// RouterLink is the edge↔router link configuration; CompareLink the
	// edge↔compare links (Central mode).
	RouterLink  netem.LinkConfig
	CompareLink netem.LinkConfig
	// SampleRate is the 1-in-N divisor for CombinerSampling (default 16).
	SampleRate int
}

// Combiner is an assembled robust combiner: the realisation of Fig. 2/3.
type Combiner struct {
	// Left and Right are the trusted edges (s1 and s2 in Fig. 3).
	Left, Right *EdgeSwitch
	// Routers are the k untrusted routers, index-aligned with the
	// compare's port numbering.
	Routers []*switching.Switch
	// Compare is the compare node, nil in Dup and Inline modes.
	Compare *CompareNode
	// RouterLinks[i] holds router i's two trunk links — [RouterPortLeft]
	// toward Left, [RouterPortRight] toward Right — exposed so
	// fault-injection layers can flap them.
	RouterLinks [][2]*netem.Link
	// Middleboxes holds the two inline compares (Inline mode only),
	// indexed like the edges: 0 behind Left, 1 behind Right.
	Middleboxes [2]*Middlebox
	// K is the parallelism.
	K int

	// routes and broadcast record the proactively installed rules, so a
	// router coming back from a cold restart can be repopulated — the
	// combiner is the routers' control plane (they have no controller).
	routes    []routeRecord
	broadcast bool
}

// routeRecord is one InstallRoute call, replayed on router restart.
type routeRecord struct {
	mac  packet.MAC
	side Side
}

// RouterPortLeft and RouterPortRight are the port indices a combiner
// router uses toward each edge.
const (
	RouterPortLeft  = 0
	RouterPortRight = 1
)

// Build assembles a combiner inside net. newRouter constructs untrusted
// router i (letting the caller pick configuration and, for experiments,
// attach adversarial behaviors); Build registers and wires everything
// except the two host-side attachments, which the caller connects to
// EdgeHostPort via AttachHost or netem.Network.Connect.
func Build(net *netem.Network, spec CombinerSpec, newRouter func(i int) *switching.Switch) *Combiner {
	if spec.K < 1 || spec.K > MaxK {
		panic(fmt.Sprintf("core: combiner K=%d out of range [1,%d]", spec.K, MaxK))
	}
	edgeMode := EdgeModeCompare
	switch spec.Mode {
	case CombinerDup:
		edgeMode = EdgeModeDup
	case CombinerSampling:
		edgeMode = EdgeModeSample
	case CombinerInline:
		edgeMode = EdgeModeInline
	}

	c := &Combiner{K: spec.K}
	c.Left = NewEdgeSwitch(net.SchedulerFor(spec.NamePrefix+"s1"), EdgeConfig{
		Name:       spec.NamePrefix + "s1",
		EdgeID:     0,
		Mode:       edgeMode,
		ProcDelay:  spec.EdgeProcDelay,
		ProcQueue:  spec.EdgeProcQueue,
		SampleRate: spec.SampleRate,
	})
	c.Right = NewEdgeSwitch(net.SchedulerFor(spec.NamePrefix+"s2"), EdgeConfig{
		Name:       spec.NamePrefix + "s2",
		EdgeID:     1,
		Mode:       edgeMode,
		ProcDelay:  spec.EdgeProcDelay,
		ProcQueue:  spec.EdgeProcQueue,
		SampleRate: spec.SampleRate,
	})
	net.Add(c.Left)
	net.Add(c.Right)

	for i := 0; i < spec.K; i++ {
		r := newRouter(i)
		net.Add(r)
		c.Routers = append(c.Routers, r)
		edgePort := 1 + i
		ll := net.Connect(c.Left, edgePort, r, RouterPortLeft, spec.RouterLink)
		lr := net.Connect(c.Right, edgePort, r, RouterPortRight, spec.RouterLink)
		c.RouterLinks = append(c.RouterLinks, [2]*netem.Link{ll, lr})
		c.Left.AddRouterPort(edgePort, i)
		c.Right.AddRouterPort(edgePort, i)
	}

	if spec.Mode == CombinerInline {
		for i, name := range []string{spec.NamePrefix + "mb1", spec.NamePrefix + "mb2"} {
			mb := NewMiddlebox(net.SchedulerFor(name), MiddleboxConfig{
				Name:        name,
				K:           spec.K,
				Engine:      spec.Compare.Engine,
				PerCopyCost: spec.Compare.PerCopyCost,
				QueueLimit:  spec.Compare.QueueLimit,
			})
			net.Add(mb)
			c.Middleboxes[i] = mb
		}
		net.Connect(c.Middleboxes[0], MiddleboxNetPort, c.Left, EdgeHostPort, spec.CompareLink)
		net.Connect(c.Middleboxes[1], MiddleboxNetPort, c.Right, EdgeHostPort, spec.CompareLink)
		return c
	}

	if spec.Mode != CombinerDup {
		cfg := spec.Compare
		if cfg.Name == "" {
			cfg.Name = spec.NamePrefix + "compare"
		}
		cfg.Engine.K = spec.K
		if spec.Mode == CombinerSampling {
			// The sampled compare only audits; it must not gate
			// forwarding.
			cfg.Engine.DetectOnly = true
		}
		c.Compare = NewCompareNode(net.SchedulerFor(cfg.Name), cfg)
		net.Add(c.Compare)
		comparePort := 1 + spec.K
		net.Connect(c.Compare, 0, c.Left, comparePort, spec.CompareLink)
		net.Connect(c.Compare, 1, c.Right, comparePort, spec.CompareLink)
		c.Left.SetComparePort(comparePort)
		c.Right.SetComparePort(comparePort)
		c.Compare.RegisterEdge(0, c.Left)
		c.Compare.RegisterEdge(1, c.Right)
	}
	return c
}

// Side selects one edge of a combiner.
type Side int

// Combiner sides.
const (
	SideLeft Side = iota + 1
	SideRight
)

// AttachHost connects a host-like node (its port hostPort) to the given
// side's EdgeHostPort, registers the host MAC for ingress validation and
// forwarding, and installs MAC routes on every router so traffic for the
// host exits toward that side.
func (c *Combiner) AttachHost(net *netem.Network, side Side, host netem.Node, hostPort int, mac packet.MAC, link netem.LinkConfig) {
	edge, mb := c.Left, c.Middleboxes[0]
	if side == SideRight {
		edge, mb = c.Right, c.Middleboxes[1]
	}
	if mb != nil {
		// Inline mode: the host hangs off the middlebox, which is
		// already wired to the edge's host port.
		net.Connect(host, hostPort, mb, MiddleboxHostPort, link)
	} else {
		net.Connect(host, hostPort, edge, EdgeHostPort, link)
	}
	edge.AddHostPort(EdgeHostPort, mac)
	c.InstallRoute(mac, side)
}

// InstallRoute installs dst-MAC forwarding toward side on every router —
// the proactively installed rules of the prototype ("the only matched
// header field is the MAC destination address", §IV).
func (c *Combiner) InstallRoute(mac packet.MAC, side Side) {
	c.routes = append(c.routes, routeRecord{mac: mac, side: side})
	for _, r := range c.Routers {
		c.installRouteOn(r, mac, side)
	}
}

func (c *Combiner) installRouteOn(r *switching.Switch, mac packet.MAC, side Side) {
	out := uint16(RouterPortLeft)
	if side == SideRight {
		out = uint16(RouterPortRight)
	}
	r.Table().Add(&openflow.FlowEntry{
		Priority: 100,
		Match:    openflow.MatchAll().WithDlDst(mac),
		Actions:  []openflow.Action{openflow.Output(out)},
	})
}

// InstallBroadcastRoutes makes the combiner transparent to broadcast
// frames (ARP in particular): every router forwards broadcasts received
// from one edge out toward the other.
func (c *Combiner) InstallBroadcastRoutes() {
	c.broadcast = true
	for _, r := range c.Routers {
		c.installBroadcastOn(r)
	}
}

func (c *Combiner) installBroadcastOn(r *switching.Switch) {
	r.Table().Add(&openflow.FlowEntry{
		Priority: 90,
		Match:    openflow.MatchAll().WithDlDst(packet.Broadcast).WithInPort(RouterPortLeft),
		Actions:  []openflow.Action{openflow.Output(RouterPortRight)},
	})
	r.Table().Add(&openflow.FlowEntry{
		Priority: 90,
		Match:    openflow.MatchAll().WithDlDst(packet.Broadcast).WithInPort(RouterPortRight),
		Actions:  []openflow.Action{openflow.Output(RouterPortLeft)},
	})
}

// RestartRouter powers router i back up after a crash and replays every
// recorded proactive rule onto its empty table — the combiner acting as
// the routers' control plane, the way the prototype's operator pre-loads
// the r_i. A router with its own controller connection instead re-learns
// through the re-run handshake; the replay here is idempotent on top.
func (c *Combiner) RestartRouter(i int) {
	r := c.Routers[i]
	r.Restart()
	for _, rec := range c.routes {
		c.installRouteOn(r, rec.mac, rec.side)
	}
	if c.broadcast {
		c.installBroadcastOn(r)
	}
}

// Close releases the compare's periodic sweep (Dup combiners have nothing
// to release).
func (c *Combiner) Close() {
	if c.Compare != nil {
		c.Compare.Close()
	}
	for _, mb := range c.Middleboxes {
		if mb != nil {
			mb.Close()
		}
	}
}
