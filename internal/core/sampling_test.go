package core_test

import (
	"testing"
	"time"

	"netco/internal/adversary"
	"netco/internal/core"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/traffic"
)

func buildSamplingRig(t *testing.T, sampleRate int, compromise func(i int) switching.Behavior) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	net := netem.New(sched)
	link := netem.LinkConfig{Bandwidth: 500e6, Delay: 10 * time.Microsecond, QueueLimit: 100}
	spec := core.CombinerSpec{
		K:          3,
		Mode:       core.CombinerSampling,
		SampleRate: sampleRate,
		Compare: core.CompareNodeConfig{
			Engine:      core.Config{HoldTimeout: 10 * time.Millisecond, CacheCapacity: 1 << 16},
			PerCopyCost: 5 * time.Microsecond,
		},
		EdgeProcDelay: time.Microsecond,
		RouterLink:    link,
		CompareLink:   link,
	}
	comb := core.Build(net, spec, func(i int) *switching.Switch {
		sw := switching.New(sched, switching.Config{Name: "r" + string(rune('0'+i)), ProcDelay: time.Microsecond})
		if compromise != nil {
			if b := compromise(i); b != nil {
				sw.SetBehavior(b)
			}
		}
		return sw
	})
	h1 := traffic.NewHost(sched, "h1", packet.HostMAC(1), packet.HostIP(1), traffic.HostConfig{EchoResponder: true})
	h2 := traffic.NewHost(sched, "h2", packet.HostMAC(2), packet.HostIP(2), traffic.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, core.SideLeft, h1, traffic.HostPort, h1.MAC(), link)
	comb.AttachHost(net, core.SideRight, h2, traffic.HostPort, h2.MAC(), link)
	return &rig{sched: sched, net: net, comb: comb, h1: h1, h2: h2}
}

func TestSamplingForwardsWithoutCompareLatency(t *testing.T) {
	r := buildSamplingRig(t, 16, nil)
	defer r.comb.Close()
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 800})
	src.Start()
	r.sched.RunFor(200 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(50 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent {
		t.Fatalf("delivered %d of %d on the fast path", st.Unique, src.Sent)
	}
	if st.Duplicates != 0 {
		t.Fatalf("%d duplicates leaked (compare releases must be swallowed)", st.Duplicates)
	}
	// Only ≈1/16 of packets hit the compare, ≈3 copies each.
	es := r.comb.Compare.EngineStats()
	maxExpected := 3 * (src.Sent/16 + src.Sent/8) // generous headroom
	if es.Ingested == 0 || es.Ingested > maxExpected {
		t.Fatalf("compare ingested %d copies of %d packets at rate 1/16", es.Ingested, src.Sent)
	}
}

func TestSamplingDetectsTamperer(t *testing.T) {
	// The primary (fast-path) router is honest; router 1 tampers with
	// payload-bound TOS. Sampled packets expose it.
	r := buildSamplingRig(t, 8, func(i int) switching.Behavior {
		if i != 1 {
			return nil
		}
		return &adversary.Modify{
			Match:   openflow.MatchAll().WithDlDst(packet.HostMAC(2)),
			Rewrite: []openflow.Action{openflow.SetNwTOS(0xfc)},
		}
	})
	defer r.comb.Close()

	detections := 0
	r.comb.Compare.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDetection {
			detections++
		}
	}
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 20e6, PayloadSize: 800})
	src.Start()
	r.sched.RunFor(300 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d (fast path must be unaffected)", got, src.Sent)
	}
	if detections == 0 {
		t.Fatal("sampling never detected the tampering router")
	}
}

func TestSamplingMissesNothingWhenRateIsOne(t *testing.T) {
	// SampleRate 1 degenerates to full detection coverage.
	r := buildSamplingRig(t, 1, func(i int) switching.Behavior {
		if i != 2 {
			return nil
		}
		return &adversary.Drop{Match: openflow.MatchAll()}
	})
	defer r.comb.Close()
	detections := 0
	r.comb.Compare.OnAlarm = func(a core.Alarm) {
		if a.Kind == core.EventDetection {
			detections++
		}
	}
	sink := traffic.NewUDPSink(r.h2, 5001)
	src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
	src.Start()
	r.sched.RunFor(100 * time.Millisecond)
	src.Stop()
	r.sched.RunFor(100 * time.Millisecond)

	if got := sink.Stats().Unique; got != src.Sent {
		t.Fatalf("delivered %d of %d", got, src.Sent)
	}
	if detections < int(src.Sent/2) {
		t.Fatalf("detections = %d for %d dropped packets at rate 1", detections, src.Sent)
	}
}

// TestSamplingCoverageScalesWithRate is the §IX trade-off: the sampling
// fraction buys proportionally more independent detection evidence (and,
// in expectation, proportionally lower detection latency — asserted here
// via evidence counts, which are deterministic, rather than first-alarm
// times, which quantise to sweep boundaries).
func TestSamplingCoverageScalesWithRate(t *testing.T) {
	detections := func(rate int) int {
		r := buildSamplingRig(t, rate, func(i int) switching.Behavior {
			if i != 1 {
				return nil
			}
			return &adversary.Drop{Match: openflow.MatchAll()}
		})
		defer r.comb.Close()
		n := 0
		r.comb.Compare.OnAlarm = func(a core.Alarm) {
			if a.Kind == core.EventDetection {
				n++
			}
		}
		src := traffic.NewUDPSource(r.h1, 4001, r.h2.Endpoint(5001), traffic.UDPSourceConfig{Rate: 10e6, PayloadSize: 500})
		src.Start()
		r.sched.RunFor(time.Second)
		src.Stop()
		r.sched.RunFor(100 * time.Millisecond)
		if n == 0 {
			t.Fatalf("rate 1/%d never detected the dropper", rate)
		}
		return n
	}
	full := detections(1)
	sparse := detections(64)
	if full < 8*sparse {
		t.Fatalf("evidence at 1/1 (%d) not ≫ evidence at 1/64 (%d)", full, sparse)
	}
}
