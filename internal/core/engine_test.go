package core

import (
	"testing"
	"testing/quick"
	"time"

	"netco/internal/packet"
)

func frame(n int) (wire []byte, pkt *packet.Packet) {
	src := packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 1000}
	dst := packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 2000}
	pkt = packet.NewUDP(src, dst, []byte{byte(n), byte(n >> 8), byte(n >> 16)})
	return pkt.Marshal(), pkt
}

func kinds(events []Event) []EventKind {
	out := make([]EventKind, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return out
}

func hasKind(events []Event, k EventKind) bool {
	for _, ev := range events {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

func TestEngineMajorityReleaseK3(t *testing.T) {
	e := NewEngine(Config{K: 3})
	wire, pkt := frame(1)

	if evs := e.Ingest(0, 0, wire, pkt); len(evs) != 0 {
		t.Fatalf("first copy produced %v, want nothing", kinds(evs))
	}
	evs := e.Ingest(time.Microsecond, 1, wire, pkt)
	if !hasKind(evs, EventRelease) {
		t.Fatalf("second copy produced %v, want release", kinds(evs))
	}
	// Third copy is a late duplicate: ignored, not re-released.
	if evs := e.Ingest(2*time.Microsecond, 2, wire, pkt); hasKind(evs, EventRelease) {
		t.Fatal("third copy re-released the packet")
	}
	s := e.Stats()
	if s.Released != 1 {
		t.Errorf("Released = %d, want 1", s.Released)
	}
	if s.LateCopies != 1 {
		t.Errorf("LateCopies = %d, want 1", s.LateCopies)
	}
}

func TestEngineMajorityReleaseK5(t *testing.T) {
	e := NewEngine(Config{K: 5})
	wire, pkt := frame(2)
	for port := 0; port < 2; port++ {
		if evs := e.Ingest(0, port, wire, pkt); hasKind(evs, EventRelease) {
			t.Fatalf("released after %d copies; majority of 5 needs 3", port+1)
		}
	}
	if evs := e.Ingest(0, 2, wire, pkt); !hasKind(evs, EventRelease) {
		t.Fatal("not released after 3 of 5 copies")
	}
}

func TestEngineSinglePortNeverReleases(t *testing.T) {
	// §IV case 1: a packet received on one ingress port only (e.g. a
	// crafted or rewritten packet) must never be forwarded.
	e := NewEngine(Config{K: 3, HoldTimeout: 10 * time.Millisecond, DoSThreshold: 1000})
	wire, pkt := frame(3)
	for i := 0; i < 50; i++ {
		if evs := e.Ingest(time.Duration(i)*time.Microsecond, 1, wire, pkt); hasKind(evs, EventRelease) {
			t.Fatal("packet from a single port was released")
		}
	}
	evs := e.Expire(time.Second)
	if !hasKind(evs, EventSuppressed) {
		t.Fatalf("expiry produced %v, want suppression", kinds(evs))
	}
	if e.Stats().Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", e.Stats().Suppressed)
	}
	if e.Size() != 0 {
		t.Errorf("Size = %d after expiry, want 0", e.Size())
	}
}

func TestEngineDistinguishesDifferentPackets(t *testing.T) {
	e := NewEngine(Config{K: 3})
	w1, p1 := frame(10)
	w2, p2 := frame(20)
	e.Ingest(0, 0, w1, p1)
	// A *different* packet from another port must not count toward the
	// first packet's majority.
	if evs := e.Ingest(0, 1, w2, p2); hasKind(evs, EventRelease) {
		t.Fatal("different packets combined into a majority")
	}
	if e.Size() != 2 {
		t.Fatalf("Size = %d, want 2 distinct entries", e.Size())
	}
}

func TestEngineBitExactCatchesPayloadTamper(t *testing.T) {
	e := NewEngine(Config{K: 3, Mode: ModeBitExact, HoldTimeout: time.Millisecond})
	_, pkt := frame(4)
	tampered := pkt.Clone()
	tampered.Payload[0] ^= 0xff

	e.Ingest(0, 0, pkt.Marshal(), pkt)
	if evs := e.Ingest(0, 1, tampered.Marshal(), tampered); hasKind(evs, EventRelease) {
		t.Fatal("tampered copy matched the original bit-exactly")
	}
	// The honest third copy still completes the majority.
	if evs := e.Ingest(0, 2, pkt.Marshal(), pkt); !hasKind(evs, EventRelease) {
		t.Fatal("two honest copies did not release")
	}
}

func TestEngineHeaderModeBlindToPayload(t *testing.T) {
	e := NewEngine(Config{K: 3, Mode: ModeHeader})
	_, pkt := frame(5)
	tampered := pkt.Clone()
	tampered.Payload[0] ^= 0xff

	e.Ingest(0, 0, pkt.Marshal(), pkt)
	// Header mode deliberately accepts the tampered payload — the
	// documented trade-off of the cheaper mode.
	if evs := e.Ingest(0, 1, tampered.Marshal(), tampered); !hasKind(evs, EventRelease) {
		t.Fatal("header mode failed to match same-header copies")
	}
}

func TestEngineHeaderModeCatchesVLANRewrite(t *testing.T) {
	e := NewEngine(Config{K: 3, Mode: ModeHeader})
	_, pkt := frame(6)
	rewritten := pkt.Clone()
	rewritten.Eth.VLAN = &packet.VLANTag{VID: 666} // isolation-breaking rewrite (§II)

	e.Ingest(0, 0, pkt.Marshal(), pkt)
	if evs := e.Ingest(0, 1, rewritten.Marshal(), rewritten); hasKind(evs, EventRelease) {
		t.Fatal("header mode missed a VLAN rewrite")
	}
}

func TestEngineHashedMode(t *testing.T) {
	e := NewEngine(Config{K: 3, Mode: ModeHashed})
	wire, pkt := frame(7)
	e.Ingest(0, 0, wire, pkt)
	if evs := e.Ingest(0, 1, wire, pkt); !hasKind(evs, EventRelease) {
		t.Fatal("hashed mode did not release identical copies")
	}
	tampered := pkt.Clone()
	tampered.Payload[0] ^= 1
	e2 := NewEngine(Config{K: 3, Mode: ModeHashed})
	e2.Ingest(0, 0, wire, pkt)
	if evs := e2.Ingest(0, 1, tampered.Marshal(), tampered); hasKind(evs, EventRelease) {
		t.Fatal("hashed mode matched a tampered copy")
	}
}

func TestEngineDoSDetection(t *testing.T) {
	// §IV case 2: the same packet arriving repeatedly on one port.
	e := NewEngine(Config{K: 3, DoSThreshold: 3})
	wire, pkt := frame(8)
	e.Ingest(0, 2, wire, pkt)
	e.Ingest(0, 2, wire, pkt)
	evs := e.Ingest(0, 2, wire, pkt)
	if !hasKind(evs, EventDoS) {
		t.Fatalf("third same-port copy produced %v, want DoS", kinds(evs))
	}
	// The flag fires once per entry, not per extra copy.
	if evs := e.Ingest(0, 2, wire, pkt); hasKind(evs, EventDoS) {
		t.Fatal("DoS flagged twice for the same entry")
	}
	if e.Stats().DoSFlagged != 1 {
		t.Errorf("DoSFlagged = %d, want 1", e.Stats().DoSFlagged)
	}
	// And the packet still never released.
	if e.Stats().Released != 0 {
		t.Error("DoS packet was released")
	}
}

func TestEnginePortSilenceAlarm(t *testing.T) {
	// §IV case 3: consecutive packets missing from one port.
	e := NewEngine(Config{K: 3, SilenceThreshold: 4, HoldTimeout: time.Millisecond})
	var silent []Event
	now := time.Duration(0)
	for i := 0; i < 6; i++ {
		wire, pkt := frame(100 + i)
		e.Ingest(now, 0, wire, pkt)
		e.Ingest(now, 1, wire, pkt) // port 2 never delivers
		now += 10 * time.Millisecond
		for _, ev := range e.Expire(now) {
			if ev.Kind == EventPortSilent {
				silent = append(silent, ev)
			}
		}
	}
	if len(silent) != 1 {
		t.Fatalf("port-silent alarms = %d, want exactly 1", len(silent))
	}
	if silent[0].Port != 2 {
		t.Errorf("alarm port = %d, want 2", silent[0].Port)
	}
}

func TestEnginePortSilenceResetsOnDelivery(t *testing.T) {
	e := NewEngine(Config{K: 3, SilenceThreshold: 4, HoldTimeout: time.Millisecond})
	now := time.Duration(0)
	alarms := 0
	for i := 0; i < 20; i++ {
		wire, pkt := frame(200 + i)
		e.Ingest(now, 0, wire, pkt)
		e.Ingest(now, 1, wire, pkt)
		if i%3 == 2 { // port 2 delivers every third packet
			e.Ingest(now, 2, wire, pkt)
		}
		now += 10 * time.Millisecond
		for _, ev := range e.Expire(now) {
			if ev.Kind == EventPortSilent {
				alarms++
			}
		}
	}
	if alarms != 0 {
		t.Fatalf("alarms = %d for an intermittently slow but live port, want 0", alarms)
	}
}

func TestEngineDetectOnlyMode(t *testing.T) {
	// §III: "for detecting misbehavior, two are enough".
	e := NewEngine(Config{K: 2, DetectOnly: true, HoldTimeout: time.Millisecond})
	wire, pkt := frame(9)

	evs := e.Ingest(0, 0, wire, pkt)
	if !hasKind(evs, EventRelease) {
		t.Fatal("detect-only mode did not release the first copy immediately")
	}
	// Second copy arrives: unanimity, no detection on retire.
	e.Ingest(0, 1, wire, pkt)
	if evs := e.Expire(time.Second); hasKind(evs, EventDetection) {
		t.Fatal("detection fired despite unanimity")
	}

	// Next packet: second router drops it → detection on retire.
	wire2, pkt2 := frame(11)
	e.Ingest(time.Second, 0, wire2, pkt2)
	if evs := e.Expire(2 * time.Second); !hasKind(evs, EventDetection) {
		t.Fatal("dropped copy went undetected")
	}
	if e.Stats().Detections != 1 {
		t.Errorf("Detections = %d, want 1", e.Stats().Detections)
	}
}

func TestEngineCleanup(t *testing.T) {
	e := NewEngine(Config{K: 3, CacheCapacity: 100, HoldTimeout: time.Hour})
	now := time.Duration(0)
	for i := 0; i < 101; i++ {
		wire, pkt := frame(1000 + i)
		e.Ingest(now, 0, wire, pkt)
		now += time.Microsecond
	}
	if !e.OverCapacity() {
		t.Fatal("engine not over capacity at 101/100")
	}
	events, scanned := e.Cleanup(now)
	if scanned == 0 {
		t.Fatal("cleanup scanned nothing")
	}
	if e.Size() > 50 {
		t.Fatalf("Size = %d after cleanup, want <= capacity/2", e.Size())
	}
	// The evicted unique-port entries count as suppressed.
	suppressed := 0
	for _, ev := range events {
		if ev.Kind == EventSuppressed {
			suppressed++
		}
	}
	if suppressed != scanned {
		t.Errorf("suppressed %d of %d scanned", suppressed, scanned)
	}
	if e.Stats().CleanupPasses != 1 {
		t.Errorf("CleanupPasses = %d, want 1", e.Stats().CleanupPasses)
	}
}

func TestEngineCleanupNoopUnderCapacity(t *testing.T) {
	e := NewEngine(Config{K: 3, CacheCapacity: 100})
	wire, pkt := frame(1)
	e.Ingest(0, 0, wire, pkt)
	if events, scanned := e.Cleanup(0); scanned != 0 || len(events) != 0 {
		t.Fatal("cleanup ran while under capacity")
	}
}

func TestEngineUnknownPortSuppressed(t *testing.T) {
	e := NewEngine(Config{K: 3})
	wire, pkt := frame(1)
	evs := e.Ingest(0, 7, wire, pkt)
	if !hasKind(evs, EventSuppressed) {
		t.Fatalf("unknown port produced %v, want suppression", kinds(evs))
	}
}

func TestEngineExpireKeepsYoungEntries(t *testing.T) {
	e := NewEngine(Config{K: 3, HoldTimeout: 10 * time.Millisecond})
	w1, p1 := frame(1)
	w2, p2 := frame(2)
	e.Ingest(0, 0, w1, p1)
	e.Ingest(9*time.Millisecond, 0, w2, p2)
	evs := e.Expire(11 * time.Millisecond)
	if len(evs) != 1 {
		t.Fatalf("expired %d entries, want 1 (second is younger than HoldTimeout)", len(evs))
	}
	if e.Size() != 1 {
		t.Fatalf("Size = %d, want 1", e.Size())
	}
}

// Property (safety): for any arrival pattern on at most ⌊K/2⌋ distinct
// ports, the packet is never released.
func TestMajoritySafetyProperty(t *testing.T) {
	f := func(k uint8, arrivals []uint8) bool {
		kk := int(k%2)*2 + 3 // K ∈ {3, 5}
		e := NewEngine(Config{K: kk, DoSThreshold: 1 << 20})
		minority := kk / 2
		wire, pkt := frame(42)
		for i, a := range arrivals {
			port := int(a) % minority // confined to ⌊K/2⌋ distinct ports
			evs := e.Ingest(time.Duration(i), port, wire, pkt)
			if hasKind(evs, EventRelease) {
				return false
			}
		}
		// Expiry must suppress, never release.
		for _, ev := range e.Expire(time.Hour) {
			if ev.Kind == EventRelease {
				return false
			}
		}
		return e.Stats().Released == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (liveness + exactly-once): if copies arrive on more than ⌊K/2⌋
// distinct ports within the hold window, the packet is released exactly
// once, regardless of arrival order and interleaved duplicates.
func TestMajorityLivenessProperty(t *testing.T) {
	f := func(k uint8, order []uint8, dups []uint8) bool {
		kk := int(k%2)*2 + 3
		e := NewEngine(Config{K: kk, DoSThreshold: 1 << 20})
		wire, pkt := frame(43)
		// Build an arrival sequence covering all K ports plus arbitrary
		// duplicates, in an order derived from `order`.
		seq := make([]int, 0, kk+len(dups))
		for p := 0; p < kk; p++ {
			seq = append(seq, p)
		}
		for _, d := range dups {
			seq = append(seq, int(d)%kk)
		}
		for i := range seq {
			j := 0
			if len(order) > 0 {
				j = int(order[i%len(order)]) % (i + 1)
			}
			seq[i], seq[j] = seq[j], seq[i]
		}
		releases := 0
		for i, port := range seq {
			for _, ev := range e.Ingest(time.Duration(i), port, wire, pkt) {
				if ev.Kind == EventRelease {
					releases++
				}
			}
		}
		return releases == 1 && e.Stats().Released == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: entries are always retired exactly once — total ingested
// entries equals released-and-retired plus suppressed after a full expiry.
func TestRetirementAccountingProperty(t *testing.T) {
	f := func(pattern []uint16) bool {
		e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond, DoSThreshold: 1 << 20})
		distinct := make(map[int]bool)
		for i, v := range pattern {
			wire, pkt := frame(int(v % 37)) // collisions on purpose
			port := int(v) % 3
			e.Ingest(time.Duration(i)*time.Microsecond, port, wire, pkt)
			distinct[int(v%37)] = distinct[int(v%37)] || false
		}
		e.Expire(time.Hour)
		return e.Size() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineIngestRelease(b *testing.B) {
	e := NewEngine(Config{K: 3, HoldTimeout: time.Millisecond})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, pkt := frame(i)
		now := time.Duration(i) * time.Microsecond
		e.Ingest(now, 0, wire, pkt)
		e.Ingest(now, 1, wire, pkt)
		e.Ingest(now, 2, wire, pkt)
		if i%1024 == 0 {
			e.Expire(now)
		}
	}
}

// TestCompareModeDetectionMatrix pins down which compare mode catches
// which §II mutation — the security/performance trade-off behind §III's
// "compared bit-by-bit, or just based on the header, or hashing".
func TestCompareModeDetectionMatrix(t *testing.T) {
	type mutation struct {
		name  string
		apply func(*packet.Packet)
	}
	mutations := []mutation{
		{"payload-flip", func(p *packet.Packet) { p.Payload[0] ^= 0xff }},
		{"vlan-add", func(p *packet.Packet) { p.Eth.VLAN = &packet.VLANTag{VID: 666} }},
		{"tos-rewrite", func(p *packet.Packet) { p.IP.TOS = 0xfc }},
		{"dst-mac-rewrite", func(p *packet.Packet) { p.Eth.Dst = packet.HostMAC(9) }},
		{"udp-port-rewrite", func(p *packet.Packet) { p.UDP.DstPort = 9999 }},
	}
	// caught[mode][mutation]: must the tampered copy fail to match?
	caught := map[Mode]map[string]bool{
		ModeBitExact: {"payload-flip": true, "vlan-add": true, "tos-rewrite": true, "dst-mac-rewrite": true, "udp-port-rewrite": true},
		ModeHashed:   {"payload-flip": true, "vlan-add": true, "tos-rewrite": true, "dst-mac-rewrite": true, "udp-port-rewrite": true},
		ModeHeader:   {"payload-flip": false, "vlan-add": true, "tos-rewrite": true, "dst-mac-rewrite": true, "udp-port-rewrite": true},
	}
	for mode, expectations := range caught {
		for _, mut := range mutations {
			e := NewEngine(Config{K: 3, Mode: mode})
			_, honest := frame(500)
			tampered := honest.Clone()
			mut.apply(tampered)

			e.Ingest(0, 0, honest.Marshal(), honest)
			evs := e.Ingest(0, 1, tampered.Marshal(), tampered)
			released := hasKind(evs, EventRelease)
			if expectations[mut.name] && released {
				t.Errorf("mode %d failed to catch %s", mode, mut.name)
			}
			if !expectations[mut.name] && !released {
				t.Errorf("mode %d unexpectedly caught %s", mode, mut.name)
			}
		}
	}
}

func TestEngineSeenCounterSaturates(t *testing.T) {
	// More than 255 copies on one port must not wrap the counter back
	// to zero (which would reset DoS accounting).
	e := NewEngine(Config{K: 3, DoSThreshold: 300, HoldTimeout: time.Hour})
	wire, pkt := frame(1)
	for i := 0; i < 400; i++ {
		for _, ev := range e.Ingest(time.Duration(i), 0, wire, pkt) {
			if ev.Kind == EventRelease {
				t.Fatal("single-port copies released")
			}
		}
	}
	if e.Stats().Released != 0 {
		t.Fatal("released despite single port")
	}
}
