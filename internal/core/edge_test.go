package core

import (
	"bytes"
	"testing"
	"time"

	"netco/internal/packet"
	"netco/internal/sim"
)

func samplePkt() *packet.Packet {
	return packet.NewUDP(
		packet.Endpoint{MAC: packet.HostMAC(1), IP: packet.HostIP(1), Port: 5},
		packet.Endpoint{MAC: packet.HostMAC(2), IP: packet.HostIP(2), Port: 6},
		[]byte("compare channel payload"),
	)
}

func TestCompareChannelPacketInRoundTrip(t *testing.T) {
	pkt := samplePkt()
	frame := encapPacketIn(MaxK+2, pkt) // edge 1, router 2

	if frame.Eth.EtherType != EtherTypeNetCo {
		t.Fatalf("ethertype = %#x, want %#x", frame.Eth.EtherType, EtherTypeNetCo)
	}
	port, inner, err := decapPacketIn(frame)
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if port != MaxK+2 {
		t.Fatalf("port = %d, want %d", port, MaxK+2)
	}
	if !bytes.Equal(inner, pkt.Marshal()) {
		t.Fatal("inner frame corrupted by encapsulation")
	}
}

func TestCompareChannelPacketOutRoundTrip(t *testing.T) {
	pkt := samplePkt()
	frame := encapPacketOut(pkt.Marshal())
	inner, err := decapPacketOut(frame)
	if err != nil {
		t.Fatalf("decap: %v", err)
	}
	if !bytes.Equal(inner.Marshal(), pkt.Marshal()) {
		t.Fatal("inner frame corrupted")
	}
}

func TestCompareChannelRejectsForeignFrames(t *testing.T) {
	if _, _, err := decapPacketIn(samplePkt()); err == nil {
		t.Fatal("decapPacketIn accepted a plain data frame")
	}
	if _, err := decapPacketOut(samplePkt()); err == nil {
		t.Fatal("decapPacketOut accepted a plain data frame")
	}
	// Mismatched message types cross-decode must fail.
	if _, err := decapPacketOut(encapPacketIn(0, samplePkt())); err == nil {
		t.Fatal("decapPacketOut accepted a PacketIn frame")
	}
	if _, _, err := decapPacketIn(encapPacketOut(samplePkt().Marshal())); err == nil {
		t.Fatal("decapPacketIn accepted a PacketOut frame")
	}
}

func TestCompareChannelEncapSizeAccounting(t *testing.T) {
	// The encapsulated frame must be larger than the original (it rides
	// a link, so its serialisation cost matters) and carry the OpenFlow
	// header overhead.
	pkt := samplePkt()
	frame := encapPacketIn(0, pkt)
	if frame.WireLen() <= pkt.WireLen() {
		t.Fatalf("encap %d B not larger than original %d B", frame.WireLen(), pkt.WireLen())
	}
}

func TestEdgeRouterIndexValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range router index did not panic")
		}
	}()
	sched := sim.NewScheduler()
	e := NewEdgeSwitch(sched, EdgeConfig{Name: "e"})
	e.AddRouterPort(1, MaxK)
}

func TestEdgeBlockRouterExpiry(t *testing.T) {
	sched := sim.NewScheduler()
	e := NewEdgeSwitch(sched, EdgeConfig{Name: "e"})
	e.AddRouterPort(1, 0)
	e.BlockRouter(0, 10*time.Millisecond)
	if !e.RouterBlocked(0) {
		t.Fatal("router not blocked")
	}
	// A shorter re-block must not shrink the window.
	e.BlockRouter(0, time.Millisecond)
	sched.RunUntil(5 * time.Millisecond)
	if !e.RouterBlocked(0) {
		t.Fatal("block window shrank")
	}
	sched.RunUntil(11 * time.Millisecond)
	if e.RouterBlocked(0) {
		t.Fatal("block did not expire")
	}
}

func TestEngineMajorityOverride(t *testing.T) {
	// Unanimity-required configuration: release only at 3 of 3.
	e := NewEngine(Config{K: 3, Majority: 3})
	wire, pkt := frame(77)
	e.Ingest(0, 0, wire, pkt)
	if evs := e.Ingest(0, 1, wire, pkt); hasKind(evs, EventRelease) {
		t.Fatal("released at 2 of 3 despite Majority=3")
	}
	if evs := e.Ingest(0, 2, wire, pkt); !hasKind(evs, EventRelease) {
		t.Fatal("not released at unanimity")
	}
}
