// Package pool is the dependency-free worker pool under runner.Map:
// a bounded fan-out over an integer index space with results returned
// in input order. It lives below every simulation package so that
// topology builders (which experiment, and hence runner, depend on)
// can parallelise construction work without an import cycle.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from one task, failing that task
// instead of the process. Error() deliberately excludes the stack (it
// contains nondeterministic addresses); artifacts stay reproducible and
// the full trace remains available via Stack.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Map runs fn(0..n-1) across a pool of workers and returns the results
// in index order, independent of completion order. workers <= 0 uses
// GOMAXPROCS. A task that panics fails with a *PanicError in its error
// slot; once ctx is cancelled, not-yet-started tasks fail with ctx.Err()
// without invoking fn (in-flight tasks finish). errs[i] is nil exactly
// when results[i] is valid.
func Map[R any](ctx context.Context, workers, n int, fn func(int) (R, error)) (results []R, errs []error) {
	results = make([]R, n)
	errs = make([]error, n)
	if n == 0 {
		return results, errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // keep draining so every index is marked
				}
				results[i], errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// protect invokes fn(i), converting a panic into a *PanicError.
func protect[R any](fn func(int) (R, error), i int) (result R, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero R
			result, err = zero, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}
