package pool

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, errs := Map(context.Background(), workers, 10, func(i int) (int, error) {
			return i * i, nil
		})
		for i := 0; i < 10; i++ {
			if errs[i] != nil || got[i] != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, err %v", workers, i, got[i], errs[i])
			}
		}
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	got, errs := Map(context.Background(), 4, 3, func(i int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return i, nil
	})
	if errs[0] != nil || errs[2] != nil || got[2] != 2 {
		t.Fatalf("healthy slots disturbed: %v %v", got, errs)
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic not wrapped: %v", errs[1])
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := Map(ctx, 2, 4, func(i int) (int, error) {
		t.Fatal("fn invoked after cancellation")
		return 0, nil
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	got, errs := Map(context.Background(), 4, 0, func(i int) (int, error) { return i, nil })
	if len(got) != 0 || len(errs) != 0 {
		t.Fatalf("zero-item map returned %v %v", got, errs)
	}
}
