package pool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		got, errs := Map(context.Background(), workers, 10, func(i int) (int, error) {
			return i * i, nil
		})
		for i := 0; i < 10; i++ {
			if errs[i] != nil || got[i] != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, err %v", workers, i, got[i], errs[i])
			}
		}
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	got, errs := Map(context.Background(), 4, 3, func(i int) (int, error) {
		if i == 1 {
			panic("boom")
		}
		return i, nil
	})
	if errs[0] != nil || errs[2] != nil || got[2] != 2 {
		t.Fatalf("healthy slots disturbed: %v %v", got, errs)
	}
	var pe *PanicError
	if !errors.As(errs[1], &pe) || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic not wrapped: %v", errs[1])
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := Map(ctx, 2, 4, func(i int) (int, error) {
		t.Fatal("fn invoked after cancellation")
		return 0, nil
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d] = %v, want context.Canceled", i, err)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	got, errs := Map(context.Background(), 4, 0, func(i int) (int, error) { return i, nil })
	if len(got) != 0 || len(errs) != 0 {
		t.Fatalf("zero-item map returned %v %v", got, errs)
	}
}

// TestMapNegativeWorkers pins the workers<=0 contract: any
// non-positive count falls back to GOMAXPROCS rather than deadlocking
// with zero workers or panicking on a negative wg.Add.
func TestMapNegativeWorkers(t *testing.T) {
	for _, workers := range []int{-1, -100} {
		got, errs := Map(context.Background(), workers, 7, func(i int) (int, error) {
			return i + 1, nil
		})
		for i := 0; i < 7; i++ {
			if errs[i] != nil || got[i] != i+1 {
				t.Fatalf("workers=%d: result[%d] = %d, err %v", workers, i, got[i], errs[i])
			}
		}
	}
}

// TestMapPanicOrdering scatters panics through a batch wider than the
// worker count: every panicking index gets its own *PanicError (with
// the stack captured but kept out of Error(), whose text must stay
// address-free for reproducible artifacts), and every healthy index
// keeps its in-order result.
func TestMapPanicOrdering(t *testing.T) {
	const n = 64
	got, errs := Map(context.Background(), 4, n, func(i int) (int, error) {
		if i%3 == 0 {
			panic(i)
		}
		return i * 10, nil
	})
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			var pe *PanicError
			if !errors.As(errs[i], &pe) {
				t.Fatalf("errs[%d] = %v, want *PanicError", i, errs[i])
			}
			if pe.Value != i {
				t.Fatalf("errs[%d] carries panic value %v, want %d (slot confusion)", i, pe.Value, i)
			}
			if len(pe.Stack) == 0 {
				t.Fatalf("errs[%d]: stack not captured", i)
			}
			if strings.Contains(pe.Error(), "0x") {
				t.Fatalf("errs[%d]: Error() leaks addresses: %q", i, pe.Error())
			}
		} else if errs[i] != nil || got[i] != i*10 {
			t.Fatalf("healthy slot %d disturbed: %d, %v", i, got[i], errs[i])
		}
	}
}

// TestMapConcurrent drives many Maps from many goroutines at once —
// the race-detector leg for the shared fan-out used by parallel settle
// and topology builds (go test -race ./internal/pool/).
func TestMapConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, errs := Map(context.Background(), 4, 100, func(i int) (int, error) {
				return g*1000 + i, nil
			})
			for i := 0; i < 100; i++ {
				if errs[i] != nil || got[i] != g*1000+i {
					t.Errorf("goroutine %d: result[%d] = %d, err %v", g, i, got[i], errs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
