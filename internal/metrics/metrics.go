// Package metrics provides the measurement primitives the evaluation
// harness reports: running summary statistics, RFC 3550 interarrival
// jitter, and throughput accounting — the quantities behind Table I and
// Figs. 4–8 of the paper.
package metrics

import (
	"math"
	"time"
)

// Summary accumulates running statistics (Welford's algorithm) without
// retaining samples.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add folds one sample in.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// AddDuration folds a duration sample in, in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Summary) Mean() float64 { return s.mean }

// Std returns the sample standard deviation (0 with < 2 samples).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 { return s.max }

// MeanDuration returns the mean as a duration, for time-valued summaries.
func (s *Summary) MeanDuration() time.Duration {
	return time.Duration(s.mean * float64(time.Second))
}

// Jitter is the RFC 3550 §6.4.1 interarrival jitter estimator iperf uses
// for its UDP jitter report (Fig. 8): a smoothed mean deviation of
// transit-time differences, J += (|D| − J) / 16.
type Jitter struct {
	j       float64 // seconds
	last    time.Duration
	hasLast bool
	n       int
}

// Sample folds in the transit time (receive time − send time) of one
// packet.
func (j *Jitter) Sample(transit time.Duration) {
	if j.hasLast {
		d := math.Abs((transit - j.last).Seconds())
		j.j += (d - j.j) / 16
		j.n++
	}
	j.last = transit
	j.hasLast = true
}

// Value returns the current jitter estimate.
func (j *Jitter) Value() time.Duration {
	return time.Duration(j.j * float64(time.Second))
}

// N returns the number of differences folded in.
func (j *Jitter) N() int { return j.n }

// Throughput converts a byte count over an interval to bits per second.
func Throughput(bytes uint64, interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(bytes) * 8 / interval.Seconds()
}

// Mbps converts bits per second to megabits per second for reporting.
func Mbps(bitsPerSec float64) float64 { return bitsPerSec / 1e6 }
