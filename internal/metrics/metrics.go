// Package metrics provides the measurement primitives the evaluation
// harness reports: running summary statistics, RFC 3550 interarrival
// jitter, and throughput accounting — the quantities behind Table I and
// Figs. 4–8 of the paper.
package metrics

import (
	"encoding/json"
	"math"
	"time"
)

// Summary accumulates running statistics (Welford's algorithm) without
// retaining samples.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add folds one sample in.
func (s *Summary) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasSamples || x < s.min {
		s.min = x
	}
	if !s.hasSamples || x > s.max {
		s.max = x
	}
	s.hasSamples = true
}

// AddDuration folds a duration sample in, in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the sample count.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean. With no samples it returns NaN: an empty
// summary has no mean, and a silent 0 would render as a real measurement
// in table and JSON reporters.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Std returns the sample standard deviation (0 with < 2 samples).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest sample (NaN with no samples).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample (NaN with no samples).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// MeanDuration returns the mean as a duration, for time-valued summaries.
// Durations cannot carry NaN, so the empty case is gated on N() instead:
// with no samples it returns 0 and callers that present measurements must
// check N() first.
func (s *Summary) MeanDuration() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.mean * float64(time.Second))
}

// Merge folds other into s, producing the summary that Adding every one
// of other's samples to s would have produced (up to floating-point
// rounding in mean and variance; min, max and N are exact). It is the
// combine step the parallel sweep runner uses to aggregate per-run
// summaries into one artifact.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	// Chan et al.'s parallel variance combination.
	n := float64(s.n + other.n)
	delta := other.mean - s.mean
	s.m2 += other.m2 + delta*delta*float64(s.n)*float64(other.n)/n
	s.mean += delta * float64(other.n) / n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
}

// summaryJSON is the wire form of a Summary: the sufficient statistics,
// so an unmarshalled summary can keep Adding and Merging losslessly.
type summaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the sufficient statistics. An empty summary
// marshals as {"n":0} — never as zero-valued measurements, and never as
// the NaN that Min/Max report (JSON has no NaN).
func (s Summary) MarshalJSON() ([]byte, error) {
	if s.n == 0 {
		return []byte(`{"n":0}`), nil
	}
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores a summary written by MarshalJSON.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*s = Summary{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max, hasSamples: w.N > 0}
	return nil
}

// Jitter is the RFC 3550 §6.4.1 interarrival jitter estimator iperf uses
// for its UDP jitter report (Fig. 8): a smoothed mean deviation of
// transit-time differences, J += (|D| − J) / 16.
type Jitter struct {
	j       float64 // seconds
	last    time.Duration
	hasLast bool
	n       int
}

// Sample folds in the transit time (receive time − send time) of one
// packet.
func (j *Jitter) Sample(transit time.Duration) {
	if j.hasLast {
		d := math.Abs((transit - j.last).Seconds())
		j.j += (d - j.j) / 16
		j.n++
	}
	j.last = transit
	j.hasLast = true
}

// Value returns the current jitter estimate.
func (j *Jitter) Value() time.Duration {
	return time.Duration(j.j * float64(time.Second))
}

// N returns the number of differences folded in.
func (j *Jitter) N() int { return j.n }

// ClassifierStats counts the work a two-tier flow classifier performed:
// how many lookups were answered by the exact-match microflow cache, how
// many fell through to the tuple-space search, and how much per-mask
// probing that search did. Masks is a gauge (current mask-group count),
// not a counter; Merge takes its maximum, which is the right aggregate
// for "how wide did the tuple space get" across tables.
type ClassifierStats struct {
	Lookups       uint64 `json:"lookups"`
	MicroflowHits uint64 `json:"microflow_hits"`
	TupleLookups  uint64 `json:"tuple_lookups"`
	MaskProbes    uint64 `json:"mask_probes"`
	Misses        uint64 `json:"misses"`
	Masks         int    `json:"masks"`
}

// Merge folds other into s, summing the counters and taking the maximum
// of the Masks gauge.
func (s *ClassifierStats) Merge(other ClassifierStats) {
	s.Lookups += other.Lookups
	s.MicroflowHits += other.MicroflowHits
	s.TupleLookups += other.TupleLookups
	s.MaskProbes += other.MaskProbes
	s.Misses += other.Misses
	if other.Masks > s.Masks {
		s.Masks = other.Masks
	}
}

// HitRate returns the fraction of lookups answered by the microflow
// cache (NaN with no lookups, matching Summary's empty-case convention).
func (s ClassifierStats) HitRate() float64 {
	if s.Lookups == 0 {
		return math.NaN()
	}
	return float64(s.MicroflowHits) / float64(s.Lookups)
}

// Throughput converts a byte count over an interval to bits per second.
func Throughput(bytes uint64, interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(bytes) * 8 / interval.Seconds()
}

// Mbps converts bits per second to megabits per second for reporting.
func Mbps(bitsPerSec float64) float64 { return bitsPerSec / 1e6 }
