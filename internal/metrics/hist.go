package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// histGamma is the log-bucket growth factor of Hist. Buckets cover
// (gamma^(i-1), gamma^i], so any recorded value is reproduced by
// Quantile with at most (gamma-1)/(gamma+1) ≈ 1% relative error. The
// factor is a package constant, not a field: two sketches are only
// mergeable when their bucket boundaries coincide, and a single fleet-
// wide resolution keeps every artifact in the repository comparable.
const histGamma = 1.02

// histMaxBuckets bounds the sparse bucket count. log_1.02 spans ~116
// buckets per decade, so 8192 covers ~70 decades — far beyond any
// physical quantity this simulator measures. The bound exists to keep a
// corrupted artifact from allocating unboundedly on unmarshal.
const histMaxBuckets = 8192

// Hist is a mergeable log-bucketed histogram sketch (DDSketch-flavoured):
// the streaming replacement for per-packet trace capture on fluid paths.
// It retains no samples — only sparse bucket counts at a fixed relative
// resolution plus exact N/Sum/Min/Max — so a million-flow run can record
// a per-flow goodput distribution in a few kilobytes.
//
// Determinism: Add, Merge and Quantile are pure integer/float arithmetic
// over sorted bucket indexes; no map iteration order ever escapes.
// MarshalJSON emits buckets sorted by index, so equal sketches serialise
// to equal bytes and sweep artifacts stay byte-identical across worker
// counts and partitions.
//
// The zero value is an empty, ready-to-use sketch.
type Hist struct {
	counts map[int32]uint64
	// zeros counts samples ≤ 0 (goodput of a flow that never delivered,
	// a zero-length queue): they have no logarithm, so they get a
	// dedicated bucket at value 0.
	zeros uint64

	n        uint64
	sum      float64
	min, max float64
}

// invGammaLog caches 1/ln(gamma) for bucket indexing.
var invGammaLog = 1 / math.Log(histGamma)

// bucketOf returns the bucket index for a positive value: the smallest i
// with gamma^i >= v.
func bucketOf(v float64) int32 {
	return int32(math.Ceil(math.Log(v) * invGammaLog))
}

// bucketValue returns the representative value reported for bucket i:
// the midpoint of (gamma^(i-1), gamma^i], which halves the worst-case
// relative error.
func bucketValue(i int32) float64 {
	hi := math.Pow(histGamma, float64(i))
	return hi * 2 / (1 + histGamma)
}

// Add folds one sample in. NaN is dropped (an empty measurement is not a
// measurement); ±Inf is dropped for the same reason JSON artifacts drop
// it — it cannot round-trip.
func (h *Hist) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	if v <= 0 {
		h.zeros++
		return
	}
	if h.counts == nil {
		h.counts = make(map[int32]uint64)
	}
	h.counts[bucketOf(v)]++
}

// N returns the sample count.
func (h *Hist) N() uint64 { return h.n }

// Sum returns the exact sample sum.
func (h *Hist) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (NaN when empty, matching Summary).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Min returns the exact smallest sample (NaN when empty).
func (h *Hist) Min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the exact largest sample (NaN when empty).
func (h *Hist) Max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.max
}

// Buckets returns the number of occupied log buckets (excluding the zero
// bucket) — a size gauge for reporters.
func (h *Hist) Buckets() int { return len(h.counts) }

// Quantile returns the q-quantile (q in [0,1]) to within the sketch's
// relative resolution; exact Min/Max are returned at the extremes. NaN
// when empty or q is out of range.
func (h *Hist) Quantile(q float64) float64 {
	if h.n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if q == 0 {
		return h.min
	}
	if q == 1 {
		return h.max
	}
	// rank is the 1-based index of the order statistic to report.
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.zeros {
		return 0
	}
	rank -= h.zeros
	var cum uint64
	for _, idx := range h.sortedIndexes() {
		cum += h.counts[idx]
		if cum >= rank {
			v := bucketValue(idx)
			// Clamp into the exact observed range: the edge buckets'
			// midpoints can overshoot min/max.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds other into h: the result is identical to having Added every
// one of other's samples (bucket counts and N/Sum/Min/Max are all exact
// under merge, unlike Summary's floating-point mean/variance combine).
func (h *Hist) Merge(other Hist) {
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	h.zeros += other.zeros
	if len(other.counts) > 0 && h.counts == nil {
		h.counts = make(map[int32]uint64, len(other.counts))
	}
	for idx, c := range other.counts {
		h.counts[idx] += c
	}
}

// sortedIndexes returns the occupied bucket indexes in ascending order.
func (h *Hist) sortedIndexes() []int32 {
	idxs := make([]int32, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return idxs
}

// histJSON is the wire form: parallel sorted arrays of bucket index and
// count, plus the exact scalars. Sorting makes equal sketches marshal to
// equal bytes.
type histJSON struct {
	N     uint64   `json:"n"`
	Sum   float64  `json:"sum,omitempty"`
	Min   float64  `json:"min,omitempty"`
	Max   float64  `json:"max,omitempty"`
	Zeros uint64   `json:"zeros,omitempty"`
	Idx   []int32  `json:"idx,omitempty"`
	Count []uint64 `json:"count,omitempty"`
}

// MarshalJSON encodes the sketch deterministically; an empty sketch
// marshals as {"n":0}.
func (h Hist) MarshalJSON() ([]byte, error) {
	if h.n == 0 {
		return []byte(`{"n":0}`), nil
	}
	w := histJSON{N: h.n, Sum: h.sum, Min: h.min, Max: h.max, Zeros: h.zeros}
	for _, idx := range h.sortedIndexes() {
		w.Idx = append(w.Idx, idx)
		w.Count = append(w.Count, h.counts[idx])
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a sketch written by MarshalJSON. The restored
// sketch keeps Adding and Merging losslessly.
func (h *Hist) UnmarshalJSON(b []byte) error {
	var w histJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Idx) != len(w.Count) {
		return fmt.Errorf("metrics: hist idx/count length mismatch (%d vs %d)", len(w.Idx), len(w.Count))
	}
	if len(w.Idx) > histMaxBuckets {
		return fmt.Errorf("metrics: hist has %d buckets (max %d)", len(w.Idx), histMaxBuckets)
	}
	*h = Hist{n: w.N, sum: w.Sum, min: w.Min, max: w.Max, zeros: w.Zeros}
	if len(w.Idx) > 0 {
		h.counts = make(map[int32]uint64, len(w.Idx))
		for i, idx := range w.Idx {
			h.counts[idx] += w.Count[i]
		}
	}
	return nil
}
