package metrics

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is ~2.138.
	if got := s.Std(); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("Std = %v, want ≈2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Std() != 0 {
		t.Fatalf("empty summary N/Std = %d/%v, want 0/0", s.N(), s.Std())
	}
	// Statistics of an empty sample set are NaN, not 0 — a reporter must
	// never render them as real measurements.
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty summary Mean/Min/Max = %v/%v/%v, want NaN", s.Mean(), s.Min(), s.Max())
	}
	if s.MeanDuration() != 0 {
		t.Fatalf("empty MeanDuration = %v, want 0 (gate on N)", s.MeanDuration())
	}
}

func TestSummaryMergeMatchesSingleThreadedReference(t *testing.T) {
	samples := []float64{3.5, -2, 8, 8, 0.25, 17, -9.5, 4, 4, 11, 0.125, 6}
	// Reference: all samples folded into one summary.
	var ref Summary
	for _, x := range samples {
		ref.Add(x)
	}
	// Split into three shards (as the parallel runner would), then merge.
	var a, b, c Summary
	for i, x := range samples {
		switch i % 3 {
		case 0:
			a.Add(x)
		case 1:
			b.Add(x)
		case 2:
			c.Add(x)
		}
	}
	var got Summary
	got.Merge(a)
	got.Merge(b)
	got.Merge(c)

	if got.N() != ref.N() {
		t.Fatalf("merged N = %d, want %d", got.N(), ref.N())
	}
	if math.Abs(got.Mean()-ref.Mean()) > 1e-12 {
		t.Fatalf("merged Mean = %v, want %v", got.Mean(), ref.Mean())
	}
	if math.Abs(got.Std()-ref.Std()) > 1e-12 {
		t.Fatalf("merged Std = %v, want %v", got.Std(), ref.Std())
	}
	if got.Min() != ref.Min() || got.Max() != ref.Max() {
		t.Fatalf("merged Min/Max = %v/%v, want %v/%v", got.Min(), got.Max(), ref.Min(), ref.Max())
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var empty, s Summary
	s.Add(5)
	s.Add(7)

	got := s
	got.Merge(empty) // no-op
	if got.N() != 2 || got.Mean() != 6 {
		t.Fatalf("merge(empty) changed summary: N=%d Mean=%v", got.N(), got.Mean())
	}
	var dst Summary
	dst.Merge(s) // adopt
	if dst.N() != 2 || dst.Mean() != 6 || dst.Min() != 5 || dst.Max() != 7 {
		t.Fatalf("empty.Merge(s) = N=%d Mean=%v Min=%v Max=%v", dst.N(), dst.Mean(), dst.Min(), dst.Max())
	}

	// empty ⊕ empty stays empty: N is 0 and Min/Max/Mean keep reporting
	// NaN rather than adopting zero-valued "measurements".
	var a, b Summary
	a.Merge(b)
	if a.N() != 0 || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) || !math.IsNaN(a.Mean()) {
		t.Fatalf("empty⊕empty: N=%d Min=%v Max=%v Mean=%v", a.N(), a.Min(), a.Max(), a.Mean())
	}
	// ... and stays mergeable afterwards.
	a.Merge(s)
	if a.N() != 2 || a.Min() != 5 {
		t.Fatalf("merge after empty⊕empty: N=%d Min=%v", a.N(), a.Min())
	}
}

func TestSummaryMergeNaNMinMaxPropagation(t *testing.T) {
	// The NaN that empty Min/Max *report* is an output convention, not
	// stored state: merging an empty summary in must never poison the
	// destination's min/max, in either direction.
	var empty, s Summary
	s.Add(-2)
	s.Add(9)

	got := s
	got.Merge(empty)
	if got.Min() != -2 || got.Max() != 9 {
		t.Fatalf("nonempty.Merge(empty) corrupted Min/Max: %v/%v", got.Min(), got.Max())
	}
	var dst Summary
	dst.Merge(s)
	dst.Merge(empty)
	if dst.Min() != -2 || dst.Max() != 9 || dst.N() != 2 {
		t.Fatalf("adopt-then-empty corrupted Min/Max: %v/%v N=%d", dst.Min(), dst.Max(), dst.N())
	}

	// A summary that was fed an actual NaN sample is a caller bug, but
	// Merge must still not turn a clean summary's exact fields into NaN
	// via the empty-adopt path: only genuinely empty summaries shortcut.
	var clean Summary
	clean.Add(1)
	var alsoClean Summary
	alsoClean.Add(2)
	clean.Merge(alsoClean)
	if math.IsNaN(clean.Min()) || math.IsNaN(clean.Max()) || clean.N() != 2 {
		t.Fatalf("clean merge produced NaN: %v/%v", clean.Min(), clean.Max())
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 10} {
		s.Add(x)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != s.N() || back.Mean() != s.Mean() || back.Min() != s.Min() ||
		back.Max() != s.Max() || math.Abs(back.Std()-s.Std()) > 1e-12 {
		t.Fatalf("round trip lost state: %+v vs %+v", back, s)
	}
	// The restored summary keeps merging correctly.
	var more Summary
	more.Add(20)
	back.Merge(more)
	if back.N() != 5 || back.Max() != 20 {
		t.Fatalf("merge after round trip: N=%d Max=%v", back.N(), back.Max())
	}

	// Empty summaries marshal as {"n":0} — no fake zero measurements, no
	// NaN (which JSON cannot carry).
	var empty Summary
	buf, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != `{"n":0}` {
		t.Fatalf("empty summary JSON = %s", buf)
	}
	var backEmpty Summary
	if err := json.Unmarshal(buf, &backEmpty); err != nil {
		t.Fatal(err)
	}
	if backEmpty.N() != 0 || !math.IsNaN(backEmpty.Min()) {
		t.Fatalf("empty round trip: N=%d Min=%v", backEmpty.N(), backEmpty.Min())
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(100 * time.Microsecond)
	s.AddDuration(300 * time.Microsecond)
	got := s.MeanDuration()
	if got < 199*time.Microsecond || got > 201*time.Microsecond {
		t.Fatalf("MeanDuration = %v, want ≈200µs", got)
	}
}

// Property: mean is always within [min, max], std >= 0.
func TestSummaryInvariants(t *testing.T) {
	f := func(samples []float64) bool {
		var s Summary
		for _, x := range samples {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // keep m2 within float range
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Std() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterConstantTransitIsZero(t *testing.T) {
	var j Jitter
	for i := 0; i < 100; i++ {
		j.Sample(50 * time.Microsecond)
	}
	if j.Value() != 0 {
		t.Fatalf("jitter = %v for constant transit, want 0", j.Value())
	}
	if j.N() != 99 {
		t.Fatalf("N = %d, want 99", j.N())
	}
}

func TestJitterConvergesToMeanDeviation(t *testing.T) {
	// Alternating transit 0/100µs: |D| = 100µs every step; the RFC 3550
	// filter converges to 100µs.
	var j Jitter
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			j.Sample(0)
		} else {
			j.Sample(100 * time.Microsecond)
		}
	}
	got := j.Value()
	if got < 95*time.Microsecond || got > 100*time.Microsecond {
		t.Fatalf("jitter = %v, want ≈100µs", got)
	}
}

func TestJitterSmoothing(t *testing.T) {
	// One outlier among constant transit moves the estimate by 1/16 of
	// the deviation, twice (entering and leaving the outlier).
	var j Jitter
	for i := 0; i < 50; i++ {
		j.Sample(10 * time.Microsecond)
	}
	j.Sample(170 * time.Microsecond) // deviation 160µs → +10µs
	if got := j.Value(); got < 9*time.Microsecond || got > 11*time.Microsecond {
		t.Fatalf("jitter after one outlier = %v, want ≈10µs", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(125_000_000, time.Second); got != 1e9 {
		t.Fatalf("Throughput = %v, want 1 Gbit/s", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("zero-interval throughput = %v, want 0", got)
	}
	if got := Mbps(250e6); got != 250 {
		t.Fatalf("Mbps = %v, want 250", got)
	}
}

func TestClassifierStatsMergeAndHitRate(t *testing.T) {
	a := ClassifierStats{Lookups: 100, MicroflowHits: 80, TupleLookups: 20, MaskProbes: 45, Misses: 3, Masks: 4}
	b := ClassifierStats{Lookups: 50, MicroflowHits: 10, TupleLookups: 40, MaskProbes: 90, Misses: 1, Masks: 7}
	a.Merge(b)
	want := ClassifierStats{Lookups: 150, MicroflowHits: 90, TupleLookups: 60, MaskProbes: 135, Misses: 4, Masks: 7}
	if a != want {
		t.Fatalf("Merge = %+v, want %+v", a, want)
	}
	if got := a.HitRate(); got != 0.6 {
		t.Fatalf("HitRate = %v, want 0.6", got)
	}
	if !math.IsNaN((ClassifierStats{}).HitRate()) {
		t.Fatal("empty HitRate should be NaN, not a fake measurement")
	}
}

func TestClassifierStatsJSONRoundTrip(t *testing.T) {
	in := ClassifierStats{Lookups: 9, MicroflowHits: 5, TupleLookups: 4, MaskProbes: 11, Misses: 2, Masks: 3}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ClassifierStats
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
}
