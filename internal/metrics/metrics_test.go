package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample std of this classic dataset is ~2.138.
	if got := s.Std(); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("Std = %v, want ≈2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(100 * time.Microsecond)
	s.AddDuration(300 * time.Microsecond)
	got := s.MeanDuration()
	if got < 199*time.Microsecond || got > 201*time.Microsecond {
		t.Fatalf("MeanDuration = %v, want ≈200µs", got)
	}
}

// Property: mean is always within [min, max], std >= 0.
func TestSummaryInvariants(t *testing.T) {
	f := func(samples []float64) bool {
		var s Summary
		for _, x := range samples {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue // keep m2 within float range
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9 && s.Std() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterConstantTransitIsZero(t *testing.T) {
	var j Jitter
	for i := 0; i < 100; i++ {
		j.Sample(50 * time.Microsecond)
	}
	if j.Value() != 0 {
		t.Fatalf("jitter = %v for constant transit, want 0", j.Value())
	}
	if j.N() != 99 {
		t.Fatalf("N = %d, want 99", j.N())
	}
}

func TestJitterConvergesToMeanDeviation(t *testing.T) {
	// Alternating transit 0/100µs: |D| = 100µs every step; the RFC 3550
	// filter converges to 100µs.
	var j Jitter
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			j.Sample(0)
		} else {
			j.Sample(100 * time.Microsecond)
		}
	}
	got := j.Value()
	if got < 95*time.Microsecond || got > 100*time.Microsecond {
		t.Fatalf("jitter = %v, want ≈100µs", got)
	}
}

func TestJitterSmoothing(t *testing.T) {
	// One outlier among constant transit moves the estimate by 1/16 of
	// the deviation, twice (entering and leaving the outlier).
	var j Jitter
	for i := 0; i < 50; i++ {
		j.Sample(10 * time.Microsecond)
	}
	j.Sample(170 * time.Microsecond) // deviation 160µs → +10µs
	if got := j.Value(); got < 9*time.Microsecond || got > 11*time.Microsecond {
		t.Fatalf("jitter after one outlier = %v, want ≈10µs", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(125_000_000, time.Second); got != 1e9 {
		t.Fatalf("Throughput = %v, want 1 Gbit/s", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("zero-interval throughput = %v, want 0", got)
	}
	if got := Mbps(250e6); got != 250 {
		t.Fatalf("Mbps = %v, want 250", got)
	}
}
