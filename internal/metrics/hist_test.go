package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.N() != 0 {
		t.Fatalf("empty N = %d", h.N())
	}
	for _, v := range []float64{h.Mean(), h.Min(), h.Max(), h.Quantile(0.5)} {
		if !math.IsNaN(v) {
			t.Fatalf("empty statistic = %v, want NaN", v)
		}
	}
}

func TestHistQuantileRelativeError(t *testing.T) {
	// Against the exact order statistics of a deterministic sample set.
	rng := rand.New(rand.NewSource(7))
	var h Hist
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := math.Exp(rng.Float64()*12 - 3) // ~[0.05, 8e3]
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		exact := samples[int(math.Ceil(q*float64(len(samples))))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.011 {
			t.Fatalf("q=%v: got %v want %v (rel err %v > 1.1%%)", q, got, exact, rel)
		}
	}
	if h.Quantile(0) != samples[0] || h.Quantile(1) != samples[len(samples)-1] {
		t.Fatalf("extremes not exact: %v/%v vs %v/%v",
			h.Quantile(0), h.Quantile(1), samples[0], samples[len(samples)-1])
	}
}

func TestHistZerosAndNonFinite(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(-3)
	h.Add(10)
	h.Add(math.NaN()) // dropped
	h.Add(math.Inf(1))
	if h.N() != 3 {
		t.Fatalf("N = %d, want 3 (NaN and Inf dropped)", h.N())
	}
	if h.Min() != -3 || h.Max() != 10 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Two of three samples are ≤ 0: the median lands in the zero bucket.
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("median = %v, want 0", got)
	}
}

func TestHistMergeMatchesSequentialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ref Hist
	parts := make([]Hist, 4)
	for i := 0; i < 4000; i++ {
		v := math.Exp(rng.Float64()*10 - 5)
		if i%97 == 0 {
			v = 0
		}
		ref.Add(v)
		parts[i%4].Add(v)
	}
	var merged Hist
	for _, p := range parts {
		merged.Merge(p)
	}
	// Sum is floating point, so partitioned addition can differ from
	// sequential addition in the last bits; everything else — bucket
	// counts, N, zeros, min, max — is exact under merge.
	if rel := math.Abs(merged.Sum()-ref.Sum()) / ref.Sum(); rel > 1e-12 {
		t.Fatalf("merged sum off by %v relative", rel)
	}
	merged.sum = ref.sum
	a, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("merged sketch diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestHistMergeEmptyCases(t *testing.T) {
	var a, b Hist
	a.Merge(b) // empty ⊕ empty stays empty
	if a.N() != 0 || !math.IsNaN(a.Min()) {
		t.Fatalf("empty⊕empty: N=%d Min=%v", a.N(), a.Min())
	}
	b.Add(2)
	b.Add(4)
	a.Merge(b) // empty ⊕ nonempty adopts
	if a.N() != 2 || a.Min() != 2 || a.Max() != 4 || a.Sum() != 6 {
		t.Fatalf("empty⊕nonempty: N=%d Min=%v Max=%v Sum=%v", a.N(), a.Min(), a.Max(), a.Sum())
	}
	var e Hist
	a.Merge(e) // nonempty ⊕ empty is a no-op
	if a.N() != 2 || a.Mean() != 3 {
		t.Fatalf("nonempty⊕empty changed: N=%d Mean=%v", a.N(), a.Mean())
	}
	// Merging must not alias the source's bucket map.
	a.Add(2)
	if b.N() != 2 {
		t.Fatalf("merge aliased source: b.N=%d", b.N())
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []float64{0.5, 1, 1, 2.5, 100, 0, 3e6} {
		h.Add(v)
	}
	buf, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hist
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	buf2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", buf, buf2)
	}
	// The restored sketch keeps merging losslessly.
	var more Hist
	more.Add(7)
	back.Merge(more)
	if back.N() != h.N()+1 || back.Max() != 3e6 {
		t.Fatalf("merge after round trip: N=%d Max=%v", back.N(), back.Max())
	}

	// Empty sketch marshals compactly and restores empty.
	var empty Hist
	buf, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != `{"n":0}` {
		t.Fatalf("empty hist JSON = %s", buf)
	}
	var backEmpty Hist
	if err := json.Unmarshal(buf, &backEmpty); err != nil {
		t.Fatal(err)
	}
	if backEmpty.N() != 0 {
		t.Fatalf("empty round trip N = %d", backEmpty.N())
	}
}

func TestHistUnmarshalRejectsCorrupt(t *testing.T) {
	var h Hist
	if err := h.UnmarshalJSON([]byte(`{"n":3,"idx":[1,2],"count":[1]}`)); err == nil {
		t.Fatal("idx/count mismatch accepted")
	}
}

func TestHistDeterministicAcrossInsertionOrder(t *testing.T) {
	vals := []float64{5, 0.1, 77, 3, 3, 0, 1e4, 0.1}
	var a, b Hist
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Add(vals[i])
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("insertion order leaked into serialisation:\n%s\nvs\n%s", ja, jb)
	}
}
