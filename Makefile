GO ?= go

.PHONY: check vet build test race bench-guard bench

# check is the pre-merge gate: static checks, the full test suite under
# the race detector, and the allocation-guard benchmarks (one iteration
# each — they exist to run the b.ReportAllocs paths and the AllocsPerRun
# guards embedded in the test run, not to produce stable timings).
check: vet build race bench-guard

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-guard runs the zero-allocation benchmark suite once per bench.
# The hard guarantees live in TestEngineIngestSteadyStateZeroAlloc and
# TestSchedulerSteadyStateZeroAlloc (run by `race` above); this target
# additionally exercises every benchmark body so a bench that starts
# allocating is noticed in its -benchmem output.
bench-guard:
	$(GO) test -run '^$$' -bench 'SteadyState|Churn|EngineExpire' -benchtime 1x -benchmem \
		./internal/core/ ./internal/sim/

# bench reproduces the headline end-to-end number recorded in BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineIngest$$' -benchmem -benchtime 3s .
