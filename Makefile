GO ?= go

.PHONY: check vet build test race bench-guard bench bench-flows bench-scale bench-hybrid bench-churn sweep-smoke hybrid-smoke hybrid-scale-smoke churn-smoke fuzz fuzz-smoke chaos-smoke impairment-smoke

# check is the pre-merge gate: static checks, the full test suite under
# the race detector (with scratch poisoning on, so retained engine events
# fail loudly), the allocation-guard benchmarks (one iteration each —
# they exist to run the b.ReportAllocs paths and the AllocsPerRun guards
# embedded in the test run, not to produce stable timings), an
# end-to-end parallel sweep smoke run, the hybrid-engine digest-stability
# smoke, the scenario-fuzzer smoke, the chaos-lifecycle smoke, and the
# impairment-pipeline smoke.
check: vet build race bench-guard sweep-smoke hybrid-smoke hybrid-scale-smoke churn-smoke fuzz-smoke chaos-smoke impairment-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite — including the parallel runner and the
# cross-goroutine scheduler tests — under the race detector, with
# NETCO_POISON_SCRATCH=1 so any code that retains engine scratch events
# across calls sees them scribbled and fails deterministically.
race:
	NETCO_POISON_SCRATCH=1 $(GO) test -race ./...

# sweep-smoke runs a tiny 2-worker grid end to end through the CLI and
# verifies the artifact is byte-identical to a single-worker run, then
# re-runs the grid on the partitioned parallel engine (-partitions 4)
# and demands the same bytes again — the CLI leg of the differential
# determinism suite (the in-process legs run under `race` above).
sweep-smoke:
	$(GO) run ./cmd/netco-sweep -quick -kinds ping -scenarios Linespeed,Central3 \
		-seeds 1:2 -workers 2 -json /tmp/netco-sweep-smoke-w2.json
	$(GO) run ./cmd/netco-sweep -quick -kinds ping -scenarios Linespeed,Central3 \
		-seeds 1:2 -workers 1 -json /tmp/netco-sweep-smoke-w1.json > /dev/null
	cmp /tmp/netco-sweep-smoke-w1.json /tmp/netco-sweep-smoke-w2.json
	$(GO) run ./cmd/netco-sweep -quick -kinds ping -scenarios Linespeed,Central3 \
		-seeds 1:2 -workers 1 -partitions 4 -json /tmp/netco-sweep-smoke-p4.json > /dev/null
	cmp /tmp/netco-sweep-smoke-w1.json /tmp/netco-sweep-smoke-p4.json
	@echo "sweep-smoke: artifacts byte-identical across worker and partition counts"

# hybrid-smoke is the hybrid engine's CLI determinism leg: the same
# quick hybrid grid (2 seeds) through netco-sweep at -workers 1 and 4
# must produce byte-identical JSON artifacts — runs, merged summaries
# and merged histogram sketches included. The hybrid engine itself is
# serial (one scheduler per run; -partitions is a documented no-op for
# it), so workers only reorder completion, never results.
hybrid-smoke:
	$(GO) run ./cmd/netco-sweep -quick -kinds hybrid -scenarios Central3 \
		-seeds 1:2 -workers 4 -json /tmp/netco-hybrid-smoke-w4.json
	$(GO) run ./cmd/netco-sweep -quick -kinds hybrid -scenarios Central3 \
		-seeds 1:2 -workers 1 -json /tmp/netco-hybrid-smoke-w1.json > /dev/null
	cmp /tmp/netco-hybrid-smoke-w1.json /tmp/netco-hybrid-smoke-w4.json
	@echo "hybrid-smoke: hybrid digests and histograms byte-identical across worker counts"

# hybrid-scale-smoke is the scale path's regression guard: a 40-ary
# hybrid run (2000 switches, 96000 fluid flows, 1 simulated second) that
# the bench runs twice, exiting nonzero if the digests diverge or the
# topology build (topo+wire+flows) exceeds the 1000 ms ceiling —
# roughly 5x the measured build on a single-core runner, so it trips on
# an accidental return to per-flow allocation, not on scheduler jitter.
hybrid-scale-smoke:
	$(GO) run ./cmd/netco-bench -hybrid -hybrid-arity 40 -hybrid-flows-per-host 6 \
		-hybrid-build-budget-ms 1000
	@echo "hybrid-scale-smoke: 96k-flow digest bit-identical, build inside budget"

# churn-smoke gates the churn-scale flow lifecycle engine: the fluid
# allocator's recycle/conservation/hysteresis tests and steady-state
# allocation guards, then a quick netco-bench churn run whose digest —
# per-epoch live flow rates, live counts and settle counts — must be
# bit-identical between serial and 4-worker parallel settle (the bench
# exits nonzero on divergence).
churn-smoke:
	$(GO) test ./internal/traffic/ -run 'TestFluidFlowRecycle|TestFluidChurn|TestFluidDemoteHysteresis|TestFluidSettleSteadyStateAllocs' -count 1
	$(GO) run ./cmd/netco-bench -churn -quick -churn-workers 4
	@echo "churn-smoke: lifecycle accounting clean, digest bit-identical serial vs parallel settle"

# fuzz-smoke is the scenario fuzzer's pre-merge budget: 200 randomized
# Byzantine scenarios through all four invariant oracles (masking,
# detection, no-forgery, determinism), then a sabotage pass that weakens
# the compare majority and demands the no-forgery oracle catch it — the
# self-test that proves the oracles have teeth. Finishes well inside 30s.
fuzz-smoke:
	$(GO) run ./cmd/netco-fuzz -n 200 -seed 1 -budget 25s
	$(GO) run ./cmd/netco-fuzz -n 5 -seed 42 -weaken -expect-catch

# chaos-smoke is the availability-fuzzer budget: randomized Byzantine
# scenarios with timed chaos plans (router crashes, compare restarts,
# link flaps) through the no-forgery, recovery and determinism oracles,
# then a replay of the checked-in chaos golden artifact — a crash, a
# flap train and a compare bounce layered over a drop adversary that
# must stay violation-free forever.
chaos-smoke:
	$(GO) run ./cmd/netco-fuzz -n 100 -seed 7 -chaos -budget 20s
	$(GO) test ./internal/harness/ -run TestHarnessReplay \
		-harness.replay=testdata/chaos-recovery.json

# impairment-smoke gates the impairment pipeline: the statistical
# validation suite (per-stage loss/dup/corrupt/reorder rates against
# analytic bounds at fixed seeds), an impaired fuzz pass (no-forgery and
# determinism oracles under trunk noise plus the checked-in duplication
# golden artifact), and a CLI leg — an impaired chaos grid whose JSON
# artifact must be byte-identical between a 1-worker and a 2-worker run.
impairment-smoke:
	$(GO) test ./internal/netem/ -run 'TestImpair' -count 1
	$(GO) run ./cmd/netco-fuzz -n 60 -seed 11 -impair -budget 20s
	$(GO) test ./internal/harness/ -run TestHarnessReplay \
		-harness.replay=testdata/impairment-dup.json
	$(GO) run ./cmd/netco-sweep -quick -kinds impair,chaos -scenarios Central3 \
		-seeds 1:2 -loss 1 -loss-ge 1:25 -dup-pct 0.5 -corrupt-pct 0.2 -reorder-ms 1 \
		-chaos-flap-ms 30 -workers 2 -json /tmp/netco-impair-smoke-w2.json
	$(GO) run ./cmd/netco-sweep -quick -kinds impair,chaos -scenarios Central3 \
		-seeds 1:2 -loss 1 -loss-ge 1:25 -dup-pct 0.5 -corrupt-pct 0.2 -reorder-ms 1 \
		-chaos-flap-ms 30 -workers 1 -json /tmp/netco-impair-smoke-w1.json > /dev/null
	cmp /tmp/netco-impair-smoke-w1.json /tmp/netco-impair-smoke-w2.json
	@echo "impairment-smoke: statistics in bounds, oracles clean under noise, artifacts byte-identical"

# fuzz is the long-running driver: native coverage-guided fuzzing over
# the scenario generator. Interrupt with ^C; crashers land in
# internal/harness/testdata/fuzz/ for go test to replay forever.
fuzz:
	$(GO) test ./internal/harness/ -fuzz=FuzzScenario -fuzztime 10m

# bench-guard runs the zero-allocation benchmark suite once per bench.
# The hard guarantees live in TestEngineIngestSteadyStateZeroAlloc and
# TestSchedulerSteadyStateZeroAlloc (run by `race` above); this target
# additionally exercises every benchmark body so a bench that starts
# allocating is noticed in its -benchmem output.
bench-guard:
	$(GO) test -run '^$$' -bench 'SteadyState|Churn|EngineExpire' -benchtime 1x -benchmem \
		./internal/core/ ./internal/sim/ ./internal/traffic/
	$(GO) test -run '^$$' -bench 'FlowTableLookup|SwitchPipeline' -benchtime 1x -benchmem \
		./internal/openflow/ ./internal/switching/

# bench reproduces the headline end-to-end number recorded in BENCH_1.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineIngest$$' -benchmem -benchtime 3s .

# bench-scale reproduces the parallel-engine scaling curve recorded in
# BENCH_5.json: cross-pod UDP over an 8-ary fat tree at partition counts
# {1,2,4,8,12}, asserting the observation digest is bit-identical to the
# serial run at every count (the bench exits nonzero on divergence).
bench-scale:
	$(GO) run ./cmd/netco-bench -scale

# bench-hybrid reproduces the hybrid-engine numbers recorded in
# BENCH_6.json: a 30-ary fluid fat tree (1125 switches, 101250 max-min
# fair rate-process flows) with 8 monitored flows expanded to real
# datagrams through the packet-exact k=3 combiner region. The bench
# runs the scenario twice and exits nonzero if the digests diverge.
bench-hybrid:
	$(GO) run ./cmd/netco-bench -hybrid

# bench-churn reproduces the churn-lifecycle numbers recorded in
# BENCH_10.json: the arity-90 fat tree (10125 switches, 182250 hosts)
# under 600k flow arrivals per sim-second for one simulated second —
# 1M+ lifecycle events per sim-second through arena-recycled flows,
# wheel-timed departures and per-component parallel settle. The bench
# runs serial first and exits nonzero if the parallel digest diverges.
bench-churn:
	$(GO) run ./cmd/netco-bench -churn

# bench-flows reproduces the classifier numbers recorded in BENCH_3.json:
# two-tier lookup vs the seed's linear scan at 8/64/512 rules, plus the
# whole switch ingress pipeline. The classifier differential test and the
# zero-alloc guards run as part of `race` above.
bench-flows:
	$(GO) test -run '^$$' -bench 'FlowTableLookup' -benchmem -benchtime 1s ./internal/openflow/
	$(GO) test -run '^$$' -bench 'SwitchPipeline' -benchmem -benchtime 1s ./internal/switching/
