module netco

go 1.22
