// Datacenter-attack: the §VI case study built by hand against the public
// API — a fat-tree fabric, a compromised aggregation switch that mirrors
// firewall-bound traffic toward the core and drops the responses, and a
// NetCo combiner that cages it.
//
//	go run ./examples/datacenter-attack
package main

import (
	"fmt"
	"os"
	"time"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datacenter-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, protected := range []bool{false, true} {
		if err := scenario(protected); err != nil {
			return err
		}
	}
	return nil
}

func scenario(protected bool) error {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	ft := netco.BuildFatTree(net, netco.FatTreeParams{
		Arity:           4,
		Link:            link,
		SwitchProcDelay: 2 * time.Microsecond,
	})
	pod := ft.Pods[0]
	edgeFW, edgeVM, agg := pod.Edge[0], pod.Edge[1], pod.Agg[0]

	hostCfg := netco.HostConfig{EchoResponder: true}
	fw1 := netco.NewHost(sched, "fw1", netco.HostMAC(0xf1), netco.HostIP(0xf1), hostCfg)
	vm1 := netco.NewHost(sched, "vm1", netco.HostMAC(0xa1), netco.HostIP(0xa1), hostCfg)
	net.Add(fw1)
	net.Add(vm1)
	net.Connect(fw1, 0, edgeFW, ft.EdgeHostPortOf(0), link)
	net.Connect(vm1, 0, edgeVM, ft.EdgeHostPortOf(0), link)

	addRoute := func(sw *netco.Switch, mac netco.MAC, port int) {
		sw.Table().Add(&netco.FlowEntry{
			Priority: 100,
			Match:    netco.MatchAll().WithDlDst(mac),
			Actions:  []netco.Action{netco.Output(uint16(port))},
		})
	}
	addRoute(edgeFW, fw1.MAC(), ft.EdgeHostPortOf(0))
	addRoute(edgeVM, vm1.MAC(), ft.EdgeHostPortOf(0))

	var comb *netco.Combiner
	if protected {
		// Replace the aggregation hop with a k=3 combiner; the attacker
		// is candidate 1.
		comb = netco.BuildCombiner(net, netco.CombinerSpec{
			NamePrefix: "netco-",
			K:          3,
			Mode:       netco.CombinerCentral,
			Compare: netco.CompareNodeConfig{
				Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
				PerCopyCost: 15 * time.Microsecond,
			},
			RouterLink:  link,
			CompareLink: link,
		}, func(i int) *netco.Switch {
			sw := netco.NewSwitch(sched, netco.SwitchConfig{
				Name: fmt.Sprintf("cand%d", i), DatapathID: uint64(50 + i), ProcDelay: 2 * time.Microsecond,
			})
			if i == 1 {
				// Inside the combiner the attacker's "core" port does
				// not exist; the mirror goes out the wrong side.
				compromise(sw, fw1.MAC(), vm1.MAC(), 0, 0)
			}
			return sw
		})
		defer comb.Close()
		const spare = 4
		net.Connect(edgeVM, spare, comb.Left, 0, link)
		net.Connect(edgeFW, spare, comb.Right, 0, link)
		comb.Left.AddRoute(vm1.MAC(), 0)
		comb.Right.AddRoute(fw1.MAC(), 0)
		comb.InstallRoute(fw1.MAC(), netco.SideRight)
		comb.InstallRoute(vm1.MAC(), netco.SideLeft)
		addRoute(edgeVM, fw1.MAC(), spare)
		addRoute(edgeFW, vm1.MAC(), spare)
	} else {
		addRoute(edgeVM, fw1.MAC(), ft.EdgeUpPortOf(0))
		addRoute(edgeFW, vm1.MAC(), ft.EdgeUpPortOf(0))
		addRoute(agg, fw1.MAC(), ft.AggDownPortOf(0))
		addRoute(agg, vm1.MAC(), ft.AggDownPortOf(1))
		addRoute(ft.Cores[0], fw1.MAC(), ft.CorePodPortOf(0))
		compromise(agg, fw1.MAC(), vm1.MAC(), uint16(ft.AggDownPortOf(1)), uint16(ft.AggUpPortOf(0)))
	}

	pinger := netco.NewPinger(vm1, fw1.Endpoint(0), netco.PingerConfig{
		Count: 10, Interval: 20 * time.Millisecond, ID: 1,
	})
	pinger.Run(nil)
	sched.RunFor(3 * time.Second)

	res := pinger.Result()
	label := "unprotected fabric"
	if protected {
		label = "aggregation hop inside a NetCo combiner"
	}
	fmt.Printf("== %s ==\n", label)
	fmt.Printf("  requests answered by fw1: %d (10 sent)\n", fw1.Stats().EchoesAnswered)
	fmt.Printf("  responses back at vm1:    %d\n", res.Received)
	if comb != nil {
		es := comb.Compare.EngineStats()
		fmt.Printf("  compare: released %d, quarantined %d mirrored copies\n", es.Released, es.Suppressed)
	}
	fmt.Println()
	return nil
}

// compromise installs the §VI attack: mirror firewall-bound packets
// entering on inPort out of mirrorPort, drop everything returning to the
// VM.
func compromise(sw *netco.Switch, fwMAC, vmMAC netco.MAC, inPort, mirrorPort uint16) {
	sw.SetBehavior(netco.Chain{
		&netco.Mirror{Match: netco.MatchAll().WithDlDst(fwMAC).WithInPort(inPort), ToPort: mirrorPort},
		&netco.Drop{Match: netco.MatchAll().WithDlDst(vmMAC)},
	})
}
