// Quickstart: build a k=3 robust combiner from the public API, compromise
// one of its routers, and watch the majority vote protect the traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Everything runs on a deterministic virtual clock: simulations are
	// exactly repeatable and finish in milliseconds of wall time.
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	// A robust combiner: trusted edges, three untrusted routers from
	// "different vendors", and a trusted compare that forwards a packet
	// once two of the three routers delivered identical copies.
	comb := netco.BuildCombiner(net, netco.CombinerSpec{
		K:    3,
		Mode: netco.CombinerCentral,
		Compare: netco.CompareNodeConfig{
			Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
			PerCopyCost: 15 * time.Microsecond,
		},
		EdgeProcDelay: 2 * time.Microsecond,
		RouterLink:    link,
		CompareLink:   netco.LinkConfig{Bandwidth: 2e9, Delay: 16 * time.Microsecond, QueueLimit: 400},
	}, func(i int) *netco.Switch {
		return netco.NewSwitch(sched, netco.SwitchConfig{
			Name:       fmt.Sprintf("vendor%c-router", 'A'+i),
			DatapathID: uint64(i + 1),
			ProcDelay:  2 * time.Microsecond,
		})
	})
	defer comb.Close()

	// Two hosts behind the combiner.
	h1 := netco.NewHost(sched, "h1", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{EchoResponder: true})
	h2 := netco.NewHost(sched, "h2", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, netco.SideLeft, h1, 0, h1.MAC(), link)
	comb.AttachHost(net, netco.SideRight, h2, 0, h2.MAC(), link)

	// Vendor B's router turns out to be compromised: it drops half of
	// everything and tags the rest into a foreign VLAN.
	comb.Routers[1].SetBehavior(netco.Chain{
		&netco.Drop{Match: netco.MatchAll(), Probability: 0.5, Rng: netco.NewRNG(42)},
		&netco.Modify{Match: netco.MatchAll(), Rewrite: []netco.Action{netco.SetVLANVID(666)}},
	})

	// Alarms surface at the compare.
	comb.Compare.OnAlarm = func(a netco.Alarm) {
		fmt.Printf("  [alarm] t=%-12v kind=%v edge=%d router=%d\n", a.At, a.Kind, a.Edge, a.Router)
	}

	// Send traffic: 200 ms of 20 Mbit/s UDP plus a ping train.
	sink := netco.NewUDPSink(h2, 9000)
	src := netco.NewUDPSource(h1, 9000, h2.Endpoint(9000), netco.UDPSourceConfig{
		Rate:        20e6,
		PayloadSize: 1000,
	})
	src.Start()
	pinger := netco.NewPinger(h1, h2.Endpoint(0), netco.PingerConfig{Count: 10, ID: 1})
	pinger.Run(nil)

	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	es := comb.Compare.EngineStats()
	fmt.Println()
	fmt.Printf("datagrams sent:                 %d\n", src.Sent)
	fmt.Printf("datagrams delivered (unique):   %d\n", st.Unique)
	fmt.Printf("duplicates leaked:              %d\n", st.Duplicates)
	pres := pinger.Result()
	avgRTT := "n/a"
	if pres.RTT.N() > 0 {
		avgRTT = pres.RTT.MeanDuration().String()
	}
	fmt.Printf("ping replies:                   %d/10 (avg RTT %s)\n",
		pres.Received, avgRTT)
	fmt.Printf("compare: released %d, suppressed %d tampered copies, %d late\n",
		es.Released, es.Suppressed, es.LateCopies)
	if st.Unique != src.Sent || st.Duplicates != 0 {
		return fmt.Errorf("combiner failed to mask the compromised router")
	}
	fmt.Println("\nthe compromised router changed nothing the receiver could see.")
	return nil
}
