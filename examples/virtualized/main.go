// Virtualized: the §VII combiner without extra hardware — a flow split
// over three VLAN-labelled disjoint paths through existing devices from
// two "vendors", recombined inband at the egress. One device on the
// middle path tampers with packets; the majority out-votes it.
//
//	go run ./examples/virtualized
package main

import (
	"fmt"
	"os"
	"time"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "virtualized:", err)
		os.Exit(1)
	}
}

func run() error {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	mp := netco.BuildMultipath(net, netco.MultipathParams{
		Paths:           3,
		HopsPerPath:     2,
		Link:            link,
		EdgeLink:        link,
		SwitchProcDelay: 2 * time.Microsecond,
		Edge: netco.VirtualEdgeConfig{
			Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
			PerCopyCost: 15 * time.Microsecond,
		},
		// The middle path's first device rewrites the TOS byte of
		// everything heading right — a covert-channel / policy-evasion
		// tamper.
		Compromise: func(path, hop int) netco.Behavior {
			if path == 1 && hop == 0 {
				return &netco.Modify{
					Match:   netco.MatchAll().WithDlDst(netco.HostMAC(2)),
					Rewrite: []netco.Action{netco.SetNwTOS(0xfc)},
				}
			}
			return nil
		},
	})
	defer mp.Close()

	h1 := netco.NewHost(sched, "h1", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{EchoResponder: true})
	h2 := netco.NewHost(sched, "h2", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	net.Connect(h1, 0, mp.Left, 0, link)
	net.Connect(h2, 0, mp.Right, 0, link)
	mp.Route(h1.MAC(), netco.SideLeft)
	mp.Route(h2.MAC(), netco.SideRight)

	fmt.Println("paths and devices:")
	for i, path := range mp.Paths {
		fmt.Printf("  path %d (vlan %d):", i, mp.Left.Tag(i))
		for _, sw := range path {
			fmt.Printf(" %s", sw.Name())
		}
		fmt.Println()
	}
	fmt.Println()

	sink := netco.NewUDPSink(h2, 9000)
	src := netco.NewUDPSource(h1, 9000, h2.Endpoint(9000), netco.UDPSourceConfig{
		Rate:        50e6,
		PayloadSize: 1200,
	})
	src.Start()
	sched.RunFor(300 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	es := mp.Right.EngineStats()
	fmt.Printf("datagrams sent:      %d\n", src.Sent)
	fmt.Printf("delivered (unique):  %d, duplicates %d, jitter %v\n", st.Unique, st.Duplicates, st.Jitter)
	fmt.Printf("inband compare:      released %d, suppressed %d tampered copies\n", es.Released, es.Suppressed)
	if st.Unique != src.Sent {
		return fmt.Errorf("virtual combiner lost traffic")
	}
	fmt.Println("\nno extra hardware was deployed — only path bandwidth and two trusted edges.")
	return nil
}
