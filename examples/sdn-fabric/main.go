// SDN-fabric: the substrate on its own — a full 4-ary fat-tree (20
// switches, loops and all) run by a topology-discovering shortest-path
// controller wrapped in a statistics monitor, with hosts resolving each
// other over real ARP. No combiner: this example shows the library
// doubles as a general OpenFlow/SDN simulator.
//
//	go run ./examples/sdn-fabric
package main

import (
	"fmt"
	"os"
	"time"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sdn-fabric:", err)
		os.Exit(1)
	}
}

func run() error {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 1e9, Delay: 10 * time.Microsecond, QueueLimit: 100}

	ft := netco.BuildFatTree(net, netco.FatTreeParams{
		Arity:           4,
		Link:            link,
		SwitchProcDelay: 2 * time.Microsecond,
	})

	// Two hosts in different pods, attached before the switches connect
	// so their ports appear in the features replies.
	ha := netco.NewHost(sched, "ha", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{EchoResponder: true})
	hb := netco.NewHost(sched, "hb", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{EchoResponder: true})
	net.Add(ha)
	net.Add(hb)
	net.Connect(ha, 0, ft.Pods[0].Edge[0], ft.EdgeHostPortOf(0), link)
	net.Connect(hb, 0, ft.Pods[2].Edge[1], ft.EdgeHostPortOf(0), link)

	// A shortest-path routing controller (LLDP-style discovery + BFS
	// path installation), wrapped in a statistics monitor, runs all 20
	// switches — loops included; unknown destinations are delivered by a
	// loop-safe controller-mediated flood to edge ports.
	routing := netco.NewL2Routing(sched)
	defer routing.Close()
	mon := netco.NewMonitor(sched, routing)
	defer mon.Close()
	connect := func(sw *netco.Switch) {
		sw.SetMissSendToController(true)
		sw.ConnectController(mon, 200*time.Microsecond)
	}
	for _, c := range ft.Cores {
		connect(c)
	}
	for _, pod := range ft.Pods {
		for _, sw := range pod.Agg {
			connect(sw)
		}
		for _, sw := range pod.Edge {
			connect(sw)
		}
	}
	// Let handshakes finish and discovery converge.
	sched.RunFor(1200 * time.Millisecond)
	links := 0
	for _, dpid := range routing.Discovery().Dpids() {
		links += len(routing.Discovery().Neighbors(dpid))
	}
	fmt.Printf("discovered %d switches, %d directed links\n",
		len(routing.Discovery().Dpids()), links)

	// ha knows only hb's IP; ARP does the rest (delivered to edge ports
	// by the controller until locations are learned).
	resolved := make(chan struct{}, 1)
	var hbMAC netco.MAC
	ha.Resolve(hb.IP(), func(mac netco.MAC, ok bool) {
		if !ok {
			fmt.Println("resolution failed")
			return
		}
		hbMAC = mac
		resolved <- struct{}{}
	})
	sched.RunFor(100 * time.Millisecond)
	select {
	case <-resolved:
	default:
		return fmt.Errorf("ARP did not resolve")
	}
	fmt.Printf("ARP: %s is-at %s\n", hb.IP(), hbMAC)

	// Traffic: ping + a short UDP burst.
	pinger := netco.NewPinger(ha, hb.Endpoint(0), netco.PingerConfig{Count: 10, ID: 1})
	pinger.Run(nil)
	sink := netco.NewUDPSink(hb, 7000)
	src := netco.NewUDPSource(ha, 7000, netco.Endpoint{MAC: hbMAC, IP: hb.IP(), Port: 7000}, netco.UDPSourceConfig{
		Rate: 50e6, PayloadSize: 1200,
	})
	src.Start()
	sched.RunFor(500 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	pres := pinger.Result()
	avgRTT := "n/a"
	if pres.RTT.N() > 0 {
		avgRTT = pres.RTT.MeanDuration().String()
	}
	fmt.Printf("ping: %d/10 replies, avg RTT %s\n", pres.Received, avgRTT)
	fmt.Printf("udp:  %d/%d datagrams, jitter %v\n", sink.Stats().Unique, src.Sent, sink.Stats().Jitter)

	// What the monitor saw (flow counters per switch, like the §VI
	// screening).
	fmt.Println("\nmonitor snapshots:")
	for dpid := uint64(1); dpid < 32; dpid++ {
		snap := mon.Snapshot(dpid)
		if snap.At == 0 {
			continue
		}
		var flowPkts uint64
		for _, f := range snap.Flows {
			flowPkts += f.PacketCount
		}
		fmt.Printf("  dpid %2d: %2d flows, %6d flow-pkts, %6d tx-pkts\n",
			dpid, len(snap.Flows), flowPkts, snap.TxPackets())
	}
	return nil
}
