// Sampling: the §IX future-work design — forward traffic at full speed
// through a primary router and verify only a sampled subset against the
// other candidates on an out-of-band, detect-only compare. Shows the
// trade between verification load and detection latency.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"os"
	"time"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sampling:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("sampling combiner: detection latency vs verification load")
	fmt.Printf("%12s %16s %18s %16s\n", "sample rate", "compare load", "first detection", "delivered")
	for _, rate := range []int{1, 4, 16, 64} {
		if err := runRate(rate); err != nil {
			return err
		}
	}
	fmt.Println("\nsparser sampling → less compare CPU, later detection; delivery is")
	fmt.Println("never gated on the compare (detection, not prevention).")
	return nil
}

func runRate(sampleRate int) error {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	comb := netco.BuildCombiner(net, netco.CombinerSpec{
		K:          3,
		Mode:       netco.CombinerSampling,
		SampleRate: sampleRate,
		Compare: netco.CompareNodeConfig{
			Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
			PerCopyCost: 15 * time.Microsecond,
		},
		RouterLink:  link,
		CompareLink: link,
	}, func(i int) *netco.Switch {
		sw := netco.NewSwitch(sched, netco.SwitchConfig{
			Name: fmt.Sprintf("r%d", i), DatapathID: uint64(i + 1), ProcDelay: 2 * time.Microsecond,
		})
		if i == 2 {
			// Router 2 silently drops a quarter of all traffic.
			sw.SetBehavior(&netco.Drop{Match: netco.MatchAll(), Probability: 0.25, Rng: netco.NewRNG(9)})
		}
		return sw
	})
	defer comb.Close()

	h1 := netco.NewHost(sched, "h1", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{})
	h2 := netco.NewHost(sched, "h2", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, netco.SideLeft, h1, 0, h1.MAC(), link)
	comb.AttachHost(net, netco.SideRight, h2, 0, h2.MAC(), link)

	var firstDetection time.Duration = -1
	comb.Compare.OnAlarm = func(a netco.Alarm) {
		if firstDetection < 0 {
			firstDetection = a.At
		}
	}

	sink := netco.NewUDPSink(h2, 9000)
	src := netco.NewUDPSource(h1, 9000, h2.Endpoint(9000), netco.UDPSourceConfig{
		Rate:        20e6,
		PayloadSize: 1000,
	})
	src.Start()
	sched.RunFor(time.Second)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	es := comb.Compare.EngineStats()
	load := float64(es.Ingested) / float64(3*src.Sent) * 100
	first := "never"
	if firstDetection >= 0 {
		first = firstDetection.String()
	}
	fmt.Printf("%9s1/%-2d %15.1f%% %18s %9d/%d\n",
		"", sampleRate, load, first, sink.Stats().Unique, src.Sent)
	return nil
}
