package netco_test

import (
	"fmt"
	"time"

	"netco"
)

// ExampleBuildCombiner protects a path with a k=3 robust combiner, lets
// one router drop everything, and shows that the receiver never notices.
func ExampleBuildCombiner() {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	comb := netco.BuildCombiner(net, netco.CombinerSpec{
		K:    3,
		Mode: netco.CombinerCentral,
		Compare: netco.CompareNodeConfig{
			Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
			PerCopyCost: 15 * time.Microsecond,
		},
		RouterLink:  link,
		CompareLink: link,
	}, func(i int) *netco.Switch {
		return netco.NewSwitch(sched, netco.SwitchConfig{
			Name:      fmt.Sprintf("r%d", i),
			ProcDelay: 2 * time.Microsecond,
		})
	})
	defer comb.Close()

	h1 := netco.NewHost(sched, "h1", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{})
	h2 := netco.NewHost(sched, "h2", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, netco.SideLeft, h1, 0, h1.MAC(), link)
	comb.AttachHost(net, netco.SideRight, h2, 0, h2.MAC(), link)

	// Router 2 is compromised: it silently drops everything.
	comb.Routers[2].SetBehavior(&netco.Drop{Match: netco.MatchAll()})

	sink := netco.NewUDPSink(h2, 9000)
	src := netco.NewUDPSource(h1, 9000, h2.Endpoint(9000), netco.UDPSourceConfig{
		Rate:        10e6,
		PayloadSize: 1000,
	})
	src.Start()
	sched.RunFor(100 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	fmt.Printf("delivered %d/%d, duplicates %d\n", st.Unique, src.Sent, st.Duplicates)
	// Output: delivered 125/125, duplicates 0
}

// ExampleRunCaseStudy regenerates the paper's §VI attack numbers.
func ExampleRunCaseStudy() {
	r := netco.RunCaseStudy(netco.DefaultParams())
	fmt.Printf("attack: %d requests at fw1, %d responses at vm1\n",
		r.Attack.RequestsAtFirewall, r.Attack.ResponsesAtVM)
	fmt.Printf("netco:  %d requests at fw1, %d responses at vm1\n",
		r.Protected.RequestsAtFirewall, r.Protected.ResponsesAtVM)
	// Output:
	// attack: 20 requests at fw1, 0 responses at vm1
	// netco:  10 requests at fw1, 10 responses at vm1
}
