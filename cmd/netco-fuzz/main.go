// Command netco-fuzz is the long-running driver for the Byzantine
// scenario fuzzer (internal/harness): it generates seeded random
// scenarios, executes each in an isolated simulation across a worker
// pool, and enforces the four invariant oracles — masking, detection,
// no-forgery and determinism. Violations are greedily shrunk and written
// as replayable JSON artifacts;
//
//	go test ./internal/harness/ -run TestHarnessReplay -harness.replay=<file>
//
// re-executes one exactly.
//
// Usage:
//
//	netco-fuzz [-n 200] [-budget 0s] [-seed 1] [-workers 0]
//	           [-weaken] [-expect-catch] [-chaos] [-impair]
//	           [-artifacts dir] [-json f]
//
// -n bounds the scenario count; -budget (when > 0) additionally bounds
// wall-clock time, stopping after the batch in flight. -weaken switches
// every scenario to the sabotage configuration (majority threshold one
// below a strict majority) and -expect-catch inverts the exit logic: the
// run fails unless the no-forgery oracle fires — the self-test that
// proves the oracles have teeth. -chaos adds a timed fault plan (router
// crashes, compare restarts, link flaps) to every scenario, arming the
// recovery oracle alongside no-forgery and determinism. -impair attaches
// a trunk impairment pipeline (loss, Gilbert-Elliott bursts,
// duplication, corruption, reordering) to every scenario; under noise
// the enforced claims are no-forgery and determinism.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"netco/internal/harness"
	"netco/internal/runner"
	"netco/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netco-fuzz:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable run report (-json).
type summary struct {
	Scenarios  int      `json:"scenarios"`
	Violations int      `json:"violations"`
	Oracles    []string `json:"oracles,omitempty"`
	Artifacts  []string `json:"artifacts,omitempty"`
	ElapsedMs  int64    `json:"elapsed_ms"`
	Seed       int64    `json:"seed"`
	Weaken     bool     `json:"weaken,omitempty"`
	Chaos      bool     `json:"chaos,omitempty"`
	Impair     bool     `json:"impair,omitempty"`
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("netco-fuzz", flag.ContinueOnError)
	var (
		n           = fs.Int("n", 200, "number of scenarios to check")
		budget      = fs.Duration("budget", 0, "optional wall-clock budget (0 = unlimited)")
		seed        = fs.Int64("seed", 1, "generator seed")
		workers     = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		weaken      = fs.Bool("weaken", false, "sabotage mode: weakened compare majority in every scenario")
		expectCatch = fs.Bool("expect-catch", false, "fail unless the no-forgery oracle fires (use with -weaken)")
		chaosMode   = fs.Bool("chaos", false, "add a timed fault plan (crashes, restarts, flaps) to every scenario")
		impairMode  = fs.Bool("impair", false, "attach a trunk impairment pipeline (loss, bursts, dup, corruption, reorder) to every scenario")
		artifacts   = fs.String("artifacts", "", "directory for minimized counterexample artifacts")
		jsonPath    = fs.String("json", "", "write the run summary as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}

	opts := harness.Options{Weaken: *weaken, Chaos: *chaosMode, Impair: *impairMode}
	rng := sim.NewRNG(*seed)
	start := time.Now()
	sum := summary{Seed: *seed, Weaken: *weaken, Chaos: *chaosMode, Impair: *impairMode}
	oracleSeen := make(map[string]bool)

	// Generate-and-check in batches so a -budget can stop between them
	// without abandoning in-flight work.
	const batch = 32
	for sum.Scenarios < *n {
		if ctx.Err() != nil {
			break
		}
		if *budget > 0 && time.Since(start) >= *budget {
			break
		}
		want := *n - sum.Scenarios
		if want > batch {
			want = batch
		}
		scs := make([]harness.Scenario, want)
		for i := range scs {
			scs[i] = harness.Generate(rng, opts)
		}
		results, errs := runner.Map(ctx, *workers, want, func(i int) (harness.CheckResult, error) {
			return harness.Check(scs[i])
		})
		for i := range results {
			if errs[i] != nil {
				if ctx.Err() != nil {
					break
				}
				return fmt.Errorf("scenario %d: %w", sum.Scenarios+i, errs[i])
			}
			sum.Scenarios++
			oracles := results[i].Oracles()
			if len(oracles) == 0 {
				continue
			}
			sum.Violations++
			for _, o := range oracles {
				if !oracleSeen[o] {
					oracleSeen[o] = true
					sum.Oracles = append(sum.Oracles, o)
				}
			}
			fmt.Fprintf(stdout, "violation: oracles=%v seed=%d topo=%s k=%d\n",
				oracles, scs[i].Seed, scs[i].Topology, scs[i].K)
			if *artifacts != "" {
				min := harness.Shrink(scs[i], oracles, 120)
				path := filepath.Join(*artifacts, fmt.Sprintf("ce-%d.json", scs[i].Seed))
				if err := harness.WriteArtifact(path, harness.Artifact{
					Scenario: min,
					Expect:   oracles,
					Note:     fmt.Sprintf("netco-fuzz -seed=%d, minimized", *seed),
				}); err != nil {
					return err
				}
				sum.Artifacts = append(sum.Artifacts, path)
				fmt.Fprintf(stdout, "  minimized artifact: %s\n", path)
			}
		}
	}
	sum.ElapsedMs = time.Since(start).Milliseconds()
	sortedOracles(sum.Oracles)

	fmt.Fprintf(stdout, "fuzz: %d scenarios, %d violations in %s\n",
		sum.Scenarios, sum.Violations, time.Duration(sum.ElapsedMs)*time.Millisecond)
	if *jsonPath != "" {
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "summary written to %s\n", *jsonPath)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted after %d scenarios", sum.Scenarios)
	}

	if *expectCatch {
		if !oracleSeen[harness.OracleNoForgery] {
			return fmt.Errorf("expected the no-forgery oracle to fire, but it never did (%d scenarios)", sum.Scenarios)
		}
		fmt.Fprintln(stdout, "expect-catch: no-forgery oracle fired — oracles have teeth")
		return nil
	}
	if sum.Violations > 0 {
		return fmt.Errorf("%d of %d scenarios violated an oracle", sum.Violations, sum.Scenarios)
	}
	return nil
}

func sortedOracles(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
