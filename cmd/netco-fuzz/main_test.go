package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netco/internal/harness"
)

// TestRunCleanBatch checks a small honest fuzz batch: exit 0, correct
// summary JSON shape, scenario count honored.
func TestRunCleanBatch(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "summary.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-n", "6", "-seed", "7", "-workers", "2", "-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fuzz: 6 scenarios, 0 violations") {
		t.Errorf("unexpected console output:\n%s", buf.String())
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Scenarios != 6 || sum.Violations != 0 || sum.Seed != 7 {
		t.Fatalf("bad summary: %+v", sum)
	}
}

// TestRunExpectCatch drives the sabotage self-test: with -weaken the
// no-forgery oracle must fire, minimized artifacts must land in the
// artifact directory, and -expect-catch must turn that into success.
func TestRunExpectCatch(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-n", "4", "-seed", "42", "-workers", "2", "-weaken", "-expect-catch", "-artifacts", dir,
	}, &buf)
	if err != nil {
		t.Fatalf("expect-catch failed: %v\n%s", err, buf.String())
	}
	arts, err := filepath.Glob(filepath.Join(dir, "ce-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) == 0 {
		t.Fatal("no minimized artifacts written")
	}
	art, err := harness.ReadArtifact(arts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Scenario.Flows) > 5 || len(art.Scenario.Adversaries) > 2 {
		t.Errorf("artifact not minimized: %d flows, %d adversaries",
			len(art.Scenario.Flows), len(art.Scenario.Adversaries))
	}
	found := false
	for _, o := range art.Expect {
		if o == harness.OracleNoForgery {
			found = true
		}
	}
	if !found {
		t.Errorf("artifact does not expect no-forgery: %v", art.Expect)
	}
}

// TestRunExpectCatchFailsWhenClean inverts the self-test: an honest run
// with -expect-catch must fail, proving the flag is not a no-op.
func TestRunExpectCatchFailsWhenClean(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-n", "2", "-seed", "7", "-expect-catch"}, &buf)
	if err == nil {
		t.Fatal("expect-catch succeeded without any violation")
	}
}

// TestRunFlagErrors checks argument validation.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-no-such-flag"},
	} {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
