package main

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRunGolden pins the full console output for the default seed. The
// case study is a deterministic simulation, so the numbers are part of
// the contract — they are the paper's Fig. 7 narrative.
func TestRunGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seed", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/seed1.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (re-run with -update to accept):\n%s", golden, buf.String())
	}
}

// TestRunTwice guards the FlagSet refactor: run used to register flags
// on the global CommandLine set, which panics on the second call.
func TestRunTwice(t *testing.T) {
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := run([]string{"-seed", "2"}, &buf); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("call %d produced no output", i)
		}
	}
}

// TestRunBadFlag checks flag errors surface as errors, not os.Exit.
func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
