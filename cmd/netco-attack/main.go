// Command netco-attack reproduces the §VI case study: a routing attack
// by a malicious aggregation switch in a fat-tree datacenter, shown in
// three acts — benign fabric, unprotected attack, and the same attacker
// caged inside a NetCo combiner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netco"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netco-attack:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args with its own FlagSet
// (so tests can call it repeatedly) and writes everything to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("netco-attack", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := netco.DefaultParams()
	p.Seed = *seed
	r := netco.RunCaseStudy(p)

	fmt.Fprintln(stdout, "NetCo case study: datacenter routing attack (paper §VI)")
	fmt.Fprintln(stdout, "fat-tree fabric; vm1 pings fw1 over tunnel 2 (edge → aggregation → edge)")
	fmt.Fprintln(stdout)

	print := func(name string, o netco.CaseStudyOutcome) {
		fmt.Fprintf(stdout, "-- %s --\n", name)
		fmt.Fprintf(stdout, "  echo requests sent by vm1:        %d\n", o.RequestsSent)
		fmt.Fprintf(stdout, "  requests arriving at fw1:         %d\n", o.RequestsAtFirewall)
		fmt.Fprintf(stdout, "  responses arriving at vm1:        %d\n", o.ResponsesAtVM)
		fmt.Fprintf(stdout, "  stray packets seen at the core:   %d\n", o.StrayAtCore)
		fmt.Fprintf(stdout, "  first-hop flow counter:           %d\n", o.PathRuleRequests)
		if o.CompareReleased > 0 || o.CompareSuppressed > 0 {
			fmt.Fprintf(stdout, "  compare released / suppressed:    %d / %d\n",
				o.CompareReleased, o.CompareSuppressed)
		}
		fmt.Fprintln(stdout)
	}

	print("scenario 1: all switches benign", r.Baseline)
	print("scenario 2: malicious aggregation switch (mirror + drop)", r.Attack)
	print("scenario 3: malicious switch inside a k=3 NetCo combiner", r.Protected)

	fmt.Fprintln(stdout, "paper's expectation: 10/10/10 benign; 20 requests at fw1 and 0")
	fmt.Fprintln(stdout, "responses at vm1 under attack; 10/10 with the combiner, mirrored")
	fmt.Fprintln(stdout, "packets dying inside the compare.")
	return nil
}
