// Command netco-attack reproduces the §VI case study: a routing attack
// by a malicious aggregation switch in a fat-tree datacenter, shown in
// three acts — benign fabric, unprotected attack, and the same attacker
// caged inside a NetCo combiner.
package main

import (
	"flag"
	"fmt"
	"os"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netco-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	p := netco.DefaultParams()
	p.Seed = *seed
	r := netco.RunCaseStudy(p)

	fmt.Println("NetCo case study: datacenter routing attack (paper §VI)")
	fmt.Println("fat-tree fabric; vm1 pings fw1 over tunnel 2 (edge → aggregation → edge)")
	fmt.Println()

	print := func(name string, o netco.CaseStudyOutcome) {
		fmt.Printf("-- %s --\n", name)
		fmt.Printf("  echo requests sent by vm1:        %d\n", o.RequestsSent)
		fmt.Printf("  requests arriving at fw1:         %d\n", o.RequestsAtFirewall)
		fmt.Printf("  responses arriving at vm1:        %d\n", o.ResponsesAtVM)
		fmt.Printf("  stray packets seen at the core:   %d\n", o.StrayAtCore)
		fmt.Printf("  first-hop flow counter:           %d\n", o.PathRuleRequests)
		if o.CompareReleased > 0 || o.CompareSuppressed > 0 {
			fmt.Printf("  compare released / suppressed:    %d / %d\n",
				o.CompareReleased, o.CompareSuppressed)
		}
		fmt.Println()
	}

	print("scenario 1: all switches benign", r.Baseline)
	print("scenario 2: malicious aggregation switch (mirror + drop)", r.Attack)
	print("scenario 3: malicious switch inside a k=3 NetCo combiner", r.Protected)

	fmt.Println("paper's expectation: 10/10/10 benign; 20 requests at fw1 and 0")
	fmt.Println("responses at vm1 under attack; 10/10 with the combiner, mirrored")
	fmt.Println("packets dying inside the compare.")
	return nil
}
