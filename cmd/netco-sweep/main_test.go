package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// sweepReport mirrors the JSON shape runner.Report.WriteJSON emits; the
// test decodes into it so any field rename breaks loudly here.
type sweepReport struct {
	Runs []struct {
		Group  string `json:"group"`
		Seed   int64  `json:"seed"`
		Err    string `json:"err,omitempty"`
		Result struct {
			Metrics map[string]float64 `json:"metrics"`
		} `json:"result"`
	} `json:"runs"`
	MergedHists map[string]struct {
		N uint64 `json:"n"`
	} `json:"merged_hists"`
	Failed int `json:"failed"`
}

// TestRunJSONShape drives a real (quick) sweep through the CLI and
// checks both the console output and the JSON artifact shape.
func TestRunJSONShape(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-kinds", "ping",
		"-scenarios", "Linespeed",
		"-seeds", "1,2",
		"-workers", "2",
		"-quick",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "sweep: 2 runs (1 kinds × 1 scenarios × 2 seeds × 1 variants), workers=2") {
		t.Errorf("missing sweep header in output:\n%s", out)
	}
	if !strings.Contains(out, "merged:") {
		t.Errorf("missing merged summary in output:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Runs) != 2 || rep.Failed != 0 {
		t.Fatalf("want 2 clean runs, got %d runs / %d failed", len(rep.Runs), rep.Failed)
	}
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Errorf("run %s seed=%d failed: %s", r.Group, r.Seed, r.Err)
		}
		if _, ok := r.Result.Metrics["rtt_avg_ms"]; !ok {
			t.Errorf("run %s seed=%d missing rtt_avg_ms: %v", r.Group, r.Seed, r.Result.Metrics)
		}
	}
}

// TestRunHybridSurfacesHists drives a quick hybrid sweep and checks the
// histogram sketches reach both the console summary and the JSON
// artifact's merged_hists map.
func TestRunHybridSurfacesHists(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-kinds", "hybrid",
		"-scenarios", "Central3",
		"-seeds", "1",
		"-workers", "1",
		"-partitions", "2", // a documented no-op for the serial hybrid engine
		"-quick",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "merged hists:") {
		t.Errorf("missing merged hists section in output:\n%s", out)
	}
	if !strings.Contains(out, "hybrid/Central3.flow_rate_mbps") {
		t.Errorf("hist key not surfaced on console:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"hybrid/Central3.flow_rate_mbps",
		"hybrid/Central3.flow_goodput_mbps",
		"hybrid/Central3.region_wire_bytes",
		"hybrid/Central3.region_gap_us",
	} {
		if h, ok := rep.MergedHists[key]; !ok || h.N == 0 {
			t.Errorf("merged_hists[%q] missing or empty (ok=%v)", key, ok)
		}
	}
}

// TestRunFlagParsing exercises the argument validators without running
// any simulation.
func TestRunFlagParsing(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown kind", []string{"-kinds", "bogus"}},
		{"unknown scenario", []string{"-scenarios", "NoSuch"}},
		{"bad seed", []string{"-seeds", "x"}},
		{"inverted seed range", []string{"-seeds", "9:1"}},
		{"bad trunk rate", []string{"-trunk-mbps", "-5"}},
		{"unknown flag", []string{"-no-such-flag"}},
		{"bad loss", []string{"-loss", "nope"}},
		{"bad loss corr", []string{"-loss", "1", "-loss-corr", "100"}},
		{"bad ge tuple arity", []string{"-loss-ge", "1"}},
		{"bad ge value", []string{"-loss-ge", "1:borked"}},
		{"ge absorbing bad state", []string{"-loss-ge", "1:0"}},
		{"bad dup", []string{"-dup-pct", "-1"}},
		{"bad corrupt", []string{"-corrupt-pct", "x"}},
		{"bad reorder pct", []string{"-reorder-ms", "2", "-reorder-pct", "120"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(context.Background(), tc.args, &buf); err == nil {
				t.Errorf("args %v accepted, want error", tc.args)
			}
		})
	}
}

// TestRunImpairDeterministic is the acceptance gate for the impairment
// pipeline's parallel determinism: one impaired grid (every stage kind
// active) through the CLI at -workers {1,4} and -partitions {1,4} must
// produce byte-identical JSON artifacts. The impairment PRNGs seed from
// (run seed, link creation index, direction, stage index), none of which
// depend on scheduling, so any divergence here is a real engine bug.
func TestRunImpairDeterministic(t *testing.T) {
	dir := t.TempDir()
	baseArgs := []string{
		"-kinds", "impair,chaos",
		"-scenarios", "Central3",
		"-seeds", "1:2",
		"-loss", "1",
		"-loss-corr", "25",
		"-loss-ge", "1:25",
		"-dup-pct", "0.5",
		"-corrupt-pct", "0.2",
		"-reorder-ms", "1",
		"-chaos-flap-ms", "30",
		"-quick",
	}
	artifacts := map[string][]byte{}
	for _, cfg := range []struct {
		name           string
		workers, parts int
	}{
		{"w1p1", 1, 1},
		{"w4p1", 4, 1},
		{"w1p4", 1, 4},
		{"w4p4", 4, 4},
	} {
		jsonPath := filepath.Join(dir, cfg.name+".json")
		args := append([]string{}, baseArgs...)
		args = append(args,
			"-workers", strconv.Itoa(cfg.workers),
			"-partitions", strconv.Itoa(cfg.parts),
			"-json", jsonPath)
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatalf("%s: %v\n%s", cfg.name, err, buf.String())
		}
		raw, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		var rep sweepReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: invalid JSON: %v", cfg.name, err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%s: %d runs failed:\n%s", cfg.name, rep.Failed, buf.String())
		}
		artifacts[cfg.name] = raw
	}
	for _, name := range []string{"w4p1", "w1p4", "w4p4"} {
		if !bytes.Equal(artifacts["w1p1"], artifacts[name]) {
			t.Errorf("impaired artifact %s differs from w1p1 (%d vs %d bytes)",
				name, len(artifacts[name]), len(artifacts["w1p1"]))
		}
	}
	// The grid must actually have impaired something, or the bit-equality
	// above proves nothing.
	var rep sweepReport
	if err := json.Unmarshal(artifacts["w1p1"], &rep); err != nil {
		t.Fatal(err)
	}
	var drops float64
	for _, r := range rep.Runs {
		drops += r.Result.Metrics["impair_drops"]
	}
	if drops == 0 {
		t.Fatal("impairment grid produced zero impair_drops: pipeline inactive")
	}
}

// TestRunTwice guards the FlagSet refactor: the old global-flag version
// panicked on duplicate registration.
func TestRunTwice(t *testing.T) {
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		err := run(context.Background(), []string{
			"-kinds", "ping", "-scenarios", "Linespeed", "-seeds", "1", "-quick", "-workers", "1",
		}, &buf)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}
