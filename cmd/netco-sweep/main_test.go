package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepReport mirrors the JSON shape runner.Report.WriteJSON emits; the
// test decodes into it so any field rename breaks loudly here.
type sweepReport struct {
	Runs []struct {
		Group  string `json:"group"`
		Seed   int64  `json:"seed"`
		Err    string `json:"err,omitempty"`
		Result struct {
			Metrics map[string]float64 `json:"metrics"`
		} `json:"result"`
	} `json:"runs"`
	MergedHists map[string]struct {
		N uint64 `json:"n"`
	} `json:"merged_hists"`
	Failed int `json:"failed"`
}

// TestRunJSONShape drives a real (quick) sweep through the CLI and
// checks both the console output and the JSON artifact shape.
func TestRunJSONShape(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-kinds", "ping",
		"-scenarios", "Linespeed",
		"-seeds", "1,2",
		"-workers", "2",
		"-quick",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "sweep: 2 runs (1 kinds × 1 scenarios × 2 seeds × 1 variants), workers=2") {
		t.Errorf("missing sweep header in output:\n%s", out)
	}
	if !strings.Contains(out, "merged:") {
		t.Errorf("missing merged summary in output:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Runs) != 2 || rep.Failed != 0 {
		t.Fatalf("want 2 clean runs, got %d runs / %d failed", len(rep.Runs), rep.Failed)
	}
	for _, r := range rep.Runs {
		if r.Err != "" {
			t.Errorf("run %s seed=%d failed: %s", r.Group, r.Seed, r.Err)
		}
		if _, ok := r.Result.Metrics["rtt_avg_ms"]; !ok {
			t.Errorf("run %s seed=%d missing rtt_avg_ms: %v", r.Group, r.Seed, r.Result.Metrics)
		}
	}
}

// TestRunHybridSurfacesHists drives a quick hybrid sweep and checks the
// histogram sketches reach both the console summary and the JSON
// artifact's merged_hists map.
func TestRunHybridSurfacesHists(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{
		"-kinds", "hybrid",
		"-scenarios", "Central3",
		"-seeds", "1",
		"-workers", "1",
		"-partitions", "2", // a documented no-op for the serial hybrid engine
		"-quick",
		"-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "merged hists:") {
		t.Errorf("missing merged hists section in output:\n%s", out)
	}
	if !strings.Contains(out, "hybrid/Central3.flow_rate_mbps") {
		t.Errorf("hist key not surfaced on console:\n%s", out)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep sweepReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{
		"hybrid/Central3.flow_rate_mbps",
		"hybrid/Central3.flow_goodput_mbps",
		"hybrid/Central3.region_wire_bytes",
		"hybrid/Central3.region_gap_us",
	} {
		if h, ok := rep.MergedHists[key]; !ok || h.N == 0 {
			t.Errorf("merged_hists[%q] missing or empty (ok=%v)", key, ok)
		}
	}
}

// TestRunFlagParsing exercises the argument validators without running
// any simulation.
func TestRunFlagParsing(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown kind", []string{"-kinds", "bogus"}},
		{"unknown scenario", []string{"-scenarios", "NoSuch"}},
		{"bad seed", []string{"-seeds", "x"}},
		{"inverted seed range", []string{"-seeds", "9:1"}},
		{"bad trunk rate", []string{"-trunk-mbps", "-5"}},
		{"unknown flag", []string{"-no-such-flag"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(context.Background(), tc.args, &buf); err == nil {
				t.Errorf("args %v accepted, want error", tc.args)
			}
		})
	}
}

// TestRunTwice guards the FlagSet refactor: the old global-flag version
// panicked on duplicate registration.
func TestRunTwice(t *testing.T) {
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		err := run(context.Background(), []string{
			"-kinds", "ping", "-scenarios", "Linespeed", "-seeds", "1", "-quick", "-workers", "1",
		}, &buf)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}
