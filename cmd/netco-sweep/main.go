// Command netco-sweep fans an experiment grid — kinds × scenarios ×
// seeds × parameter variants — out across a worker pool of isolated
// simulations and writes a mergeable JSON artifact.
//
// Usage:
//
//	netco-sweep [-kinds tcp,udp,ping,jitter,hybrid,chaos,impair,churn] [-scenarios all|name,...]
//	            [-seeds 1,2,3 | -seeds 1:10] [-trunk-mbps 250,500,1000]
//	            [-chaos-crashes 0,1,2] [-chaos-flap-ms 0,10,20]
//	            [-loss 0,1,5] [-loss-corr 25] [-loss-ge 1:25,5:50:80:0.5]
//	            [-dup-pct 0,1] [-corrupt-pct 0.1] [-reorder-ms 0,2] [-reorder-pct 25]
//	            [-workers n] [-partitions n] [-json f] [-quick] [-full]
//
// Every run builds its own scheduler, pools and engines; results are
// ordered by grid position, so the artifact for a given grid is
// byte-identical whatever -workers is. Interrupting with SIGINT cancels
// not-yet-started runs and reports the completed prefix.
//
// The two parallelism axes compose and neither changes results:
// -workers runs whole simulations concurrently (throughput across a
// grid), while -partitions splits each simulation across the
// conservative parallel engine's domains (latency of a single run; see
// internal/sim/par). For large grids prefer -workers — per-run
// isolation scales embarrassingly — and reserve -partitions for grids
// of a few big runs.
//
// The chaos kind measures availability under lifecycle churn; its two
// grid axes — -chaos-crashes (how many routers cold-crash during the
// window) and -chaos-flap-ms (trunk-link flap period, 0 = no flapping) —
// cross with each other and with -trunk-mbps, one variant per
// combination.
//
// The impair kind measures UDP delivery with the netem impairment
// pipeline on every trunk. Its grids — -loss (i.i.d./correlated loss
// percent, with -loss-corr), -loss-ge (Gilbert-Elliott
// pGB:pBG[:lossBad[:lossGood]] tuples in percent, like
// `tc netem loss gemodel`), -dup-pct, -corrupt-pct and -reorder-ms
// (with -reorder-pct) — cross with each other and with -trunk-mbps; a 0
// value is that axis's clean baseline. The pipeline also applies to any
// other kind when impairment flags are set (TCP goodput under loss,
// chaos under duplication, ...). Impairments are seeded from the run
// seed, so artifacts stay byte-identical across -workers and
// -partitions.
//
// The hybrid kind is serial by construction (its fluid allocator and
// packet-exact region share one scheduler), so -partitions is a no-op
// for hybrid runs: they execute unchanged and still parallelise across
// the grid via -workers, with bit-identical artifacts either way.
// Hybrid runs attach histogram sketches (flow_rate_mbps,
// flow_goodput_mbps, region_wire_bytes, region_gap_us) to each result;
// the report folds them per group into merged_hists in the JSON
// artifact and the console summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"netco/internal/experiment"
	"netco/internal/netem"
	"netco/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netco-sweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses args with its own FlagSet
// (so tests can call it repeatedly), writes to stdout, and stops
// scheduling new runs when ctx is cancelled.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("netco-sweep", flag.ContinueOnError)
	var (
		kindsFlag = fs.String("kinds", "tcp,udp,ping", "experiment kinds to run (tcp,udp,ping,jitter,hybrid,chaos,impair,churn)")
		scenFlag  = fs.String("scenarios", "Linespeed,Central3", `scenarios, comma-separated, or "all"`)
		seedsFlag = fs.String("seeds", "1", `seed list "1,2,3" or range "1:10" (inclusive)`)
		trunkFlag = fs.String("trunk-mbps", "", "optional trunk-rate grid in Mbit/s (one variant per value)")
		crashFlag = fs.String("chaos-crashes", "", "optional chaos crash-count grid (one variant per value; chaos kind)")
		flapFlag  = fs.String("chaos-flap-ms", "", "optional chaos flap-period grid in ms, 0 = no flapping (chaos kind)")
		lossFlag  = fs.String("loss", "", "optional trunk loss grid in percent (one variant per value; 0 = clean)")
		lossCorr  = fs.Float64("loss-corr", 0, "loss correlation percent applied to every -loss variant (netem-style)")
		geFlag    = fs.String("loss-ge", "", "optional Gilbert-Elliott grid: pGB:pBG[:lossBad[:lossGood]] tuples in percent, comma-separated (0 = clean)")
		dupFlag   = fs.String("dup-pct", "", "optional trunk duplication grid in percent")
		corrFlag  = fs.String("corrupt-pct", "", "optional trunk bit-corruption grid in percent")
		reoFlag   = fs.String("reorder-ms", "", "optional reorder-jitter grid in ms (0 = none)")
		reoPct    = fs.Float64("reorder-pct", 25, "percent of packets jittered for -reorder-ms variants")
		workers   = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		parts     = fs.Int("partitions", 0, "run each simulation on the parallel engine with this many partitions (0/1 = serial; orthogonal to -workers, which parallelises across runs — results are bit-identical either way)")
		jsonPath  = fs.String("json", "", "write the full report as JSON to this file")
		quick     = fs.Bool("quick", false, "smoke-test durations")
		full      = fs.Bool("full", false, "paper-faithful durations (10s × 10 runs)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kinds, err := parseKinds(*kindsFlag)
	if err != nil {
		return err
	}
	scenarios, err := parseScenarios(*scenFlag)
	if err != nil {
		return err
	}
	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		return err
	}

	base := experiment.DefaultParams()
	if *full {
		base = base.PaperFaithful()
	}
	if *quick {
		base = base.Quick()
	}
	base.Partitions = *parts
	variants, err := parseVariants(*trunkFlag, base)
	if err != nil {
		return err
	}
	variants, err = expandChaosVariants(variants, *crashFlag, *flapFlag)
	if err != nil {
		return err
	}
	variants, err = expandImpairVariants(variants, impairGrids{
		loss: *lossFlag, lossCorrPct: *lossCorr, ge: *geFlag,
		dup: *dupFlag, corrupt: *corrFlag,
		reorderMs: *reoFlag, reorderPct: *reoPct,
	})
	if err != nil {
		return err
	}

	grid := runner.Grid{Kinds: kinds, Scenarios: scenarios, Seeds: seeds, Variants: variants}
	jobs := grid.Jobs()
	fmt.Fprintf(stdout, "sweep: %d runs (%d kinds × %d scenarios × %d seeds × %d variants), workers=%d\n",
		len(jobs), len(kinds), len(scenarios), len(seeds), len(variants), effectiveWorkers(*workers))

	rep := runner.Sweep(ctx, *workers, jobs)

	printReport(stdout, rep)
	if rep.Failed > 0 {
		fmt.Fprintf(stdout, "%d of %d runs failed\n", rep.Failed, len(rep.Runs))
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *jsonPath)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted after %d completed runs", len(rep.Runs)-rep.Failed)
	}
	return nil
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func printReport(w io.Writer, rep runner.Report) {
	for _, rec := range rep.Runs {
		if rec.Err != "" {
			fmt.Fprintf(w, "  %-24s seed=%-4d FAILED: %s\n", rec.Group, rec.Seed, rec.Err)
			continue
		}
		fmt.Fprintf(w, "  %-24s seed=%-4d %s\n", rec.Group, rec.Seed, headline(rec.Result.Metrics))
	}
	if len(rep.Merged) == 0 {
		return
	}
	fmt.Fprintln(w, "merged:")
	keys := make([]string, 0, len(rep.Merged))
	for k := range rep.Merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := rep.Merged[k]
		fmt.Fprintf(w, "  %-36s n=%-3d mean=%.3f min=%.3f max=%.3f std=%.3f\n",
			k, s.N(), s.Mean(), s.Min(), s.Max(), s.Std())
	}
	if len(rep.MergedHists) == 0 {
		return
	}
	fmt.Fprintln(w, "merged hists:")
	keys = keys[:0]
	for k := range rep.MergedHists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := rep.MergedHists[k]
		fmt.Fprintf(w, "  %-36s n=%-6d p50=%.3f p95=%.3f max=%.3f\n",
			k, h.N(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
	}
}

// headline picks the run's most informative scalars for the console.
func headline(m map[string]float64) string {
	var parts []string
	for _, key := range []string{"tcp_mbps", "udp_mbps", "udp_loss", "rtt_avg_ms", "jitter_us_128B", "jitter_us_1470B", "fluid_goodput_mbps", "hybrid_event_ratio", "delivered_frac", "recovery_ms", "goodput_mbps", "impair_drops", "impair_duplicated"} {
		if v, ok := m[key]; ok {
			parts = append(parts, fmt.Sprintf("%s=%.3f", key, v))
		}
	}
	if len(parts) == 0 {
		// Fall back to everything, sorted for stable output.
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%.3f", k, m[k]))
		}
	}
	return strings.Join(parts, " ")
}

func parseKinds(spec string) ([]experiment.Kind, error) {
	if strings.EqualFold(spec, "all") {
		return experiment.AllKinds, nil
	}
	var kinds []experiment.Kind
	for _, name := range strings.Split(spec, ",") {
		k, err := experiment.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func parseScenarios(spec string) ([]experiment.Scenario, error) {
	if strings.EqualFold(spec, "all") {
		return experiment.AllScenarios, nil
	}
	var out []experiment.Scenario
	for _, name := range strings.Split(spec, ",") {
		s, err := experiment.ParseScenario(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func parseSeeds(spec string) ([]int64, error) {
	if lo, hi, ok := strings.Cut(spec, ":"); ok {
		a, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("bad seed range %q (want lo:hi, lo <= hi)", spec)
		}
		seeds := make([]int64, 0, b-a+1)
		for s := a; s <= b; s++ {
			seeds = append(seeds, s)
		}
		return seeds, nil
	}
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", part, err)
		}
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// parseVariants expands the optional trunk-rate grid. With no grid, the
// single base calibration runs untagged.
func parseVariants(trunkSpec string, base experiment.Params) ([]runner.Variant, error) {
	if trunkSpec == "" {
		return []runner.Variant{{Params: base}}, nil
	}
	var out []runner.Variant
	for _, part := range strings.Split(trunkSpec, ",") {
		mbps, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || mbps <= 0 || math.IsInf(mbps, 0) {
			return nil, fmt.Errorf("bad trunk rate %q (want Mbit/s > 0)", part)
		}
		p := base
		p.TrunkRate = mbps * 1e6
		out = append(out, runner.Variant{Name: fmt.Sprintf("trunk%g", mbps), Params: p})
	}
	return out, nil
}

// crossVariants crosses one comma-separated numeric grid into every
// existing variant: each variant fans out to one copy per grid value,
// tagged "<tag><value>" in its name. An empty spec passes the variants
// through untouched.
func crossVariants(vs []runner.Variant, spec, tag string, apply func(p experiment.Params, v float64) experiment.Params) ([]runner.Variant, error) {
	if spec == "" {
		return vs, nil
	}
	var out []runner.Variant
	for _, base := range vs {
		for _, part := range strings.Split(spec, ",") {
			val, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || val < 0 || math.IsInf(val, 0) {
				return nil, fmt.Errorf("bad %s value %q (want >= 0)", tag, part)
			}
			name := fmt.Sprintf("%s%g", tag, val)
			if base.Name != "" {
				name = base.Name + "/" + name
			}
			out = append(out, runner.Variant{Name: name, Params: apply(base.Params, val)})
		}
	}
	return out, nil
}

// expandChaosVariants crosses the churn grids — crash count and flap
// period — into every existing variant. With neither grid given the
// variants pass through untouched.
func expandChaosVariants(in []runner.Variant, crashSpec, flapSpec string) ([]runner.Variant, error) {
	vs, err := crossVariants(in, crashSpec, "crash", func(p experiment.Params, v float64) experiment.Params {
		p.ChaosCrashes = int(v)
		return p
	})
	if err != nil {
		return nil, err
	}
	return crossVariants(vs, flapSpec, "flap", func(p experiment.Params, v float64) experiment.Params {
		p.ChaosFlapPeriod = time.Duration(v * float64(time.Millisecond))
		return p
	})
}

// impairGrids bundles the CLI impairment-grid specs.
type impairGrids struct {
	loss        string  // i.i.d./correlated loss percents
	lossCorrPct float64 // correlation applied to every -loss variant
	ge          string  // Gilbert-Elliott pGB:pBG[:lossBad[:lossGood]] tuples, percents
	dup         string  // duplication percents
	corrupt     string  // bit-corruption percents
	reorderMs   string  // reorder jitter in ms
	reorderPct  float64 // fraction of packets jittered per -reorder-ms variant
}

// expandImpairVariants crosses the impairment grids into every existing
// variant, one axis at a time (so -loss and -dup-pct together yield the
// full loss × dup surface). A value of 0 disables that stage for the
// variant, which is how a grid includes its clean baseline.
func expandImpairVariants(in []runner.Variant, g impairGrids) ([]runner.Variant, error) {
	if g.lossCorrPct < 0 || g.lossCorrPct >= 100 {
		return nil, fmt.Errorf("bad -loss-corr %g (want 0 <= percent < 100)", g.lossCorrPct)
	}
	if g.reorderPct < 0 || g.reorderPct > 100 {
		return nil, fmt.Errorf("bad -reorder-pct %g (want 0..100)", g.reorderPct)
	}
	vs, err := crossVariants(in, g.loss, "loss", func(p experiment.Params, v float64) experiment.Params {
		p.Impair.LossPct = v
		p.Impair.LossCorrPct = g.lossCorrPct
		return p
	})
	if err != nil {
		return nil, err
	}
	vs, err = crossGEVariants(vs, g.ge)
	if err != nil {
		return nil, err
	}
	vs, err = crossVariants(vs, g.dup, "dup", func(p experiment.Params, v float64) experiment.Params {
		p.Impair.DupPct = v
		return p
	})
	if err != nil {
		return nil, err
	}
	vs, err = crossVariants(vs, g.corrupt, "corrupt", func(p experiment.Params, v float64) experiment.Params {
		p.Impair.CorruptPct = v
		return p
	})
	if err != nil {
		return nil, err
	}
	return crossVariants(vs, g.reorderMs, "reorder", func(p experiment.Params, v float64) experiment.Params {
		p.Impair.ReorderJitter = time.Duration(v * float64(time.Millisecond))
		p.Impair.ReorderPct = g.reorderPct
		return p
	})
}

// crossGEVariants crosses a Gilbert-Elliott grid of
// pGB:pBG[:lossBad[:lossGood]] tuples (all in percent, matching
// `tc netem loss gemodel`; lossBad defaults to 100, lossGood to 0) into
// every existing variant. "0" is the clean baseline tuple.
func crossGEVariants(vs []runner.Variant, spec string) ([]runner.Variant, error) {
	if spec == "" {
		return vs, nil
	}
	type geTuple struct {
		name string
		ge   experiment.ImpairParams
	}
	var tuples []geTuple
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fields := strings.Split(part, ":")
		if part == "0" {
			tuples = append(tuples, geTuple{name: "ge0"})
			continue
		}
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("bad -loss-ge tuple %q (want pGB:pBG[:lossBad[:lossGood]] in percent)", part)
		}
		vals := [4]float64{0, 0, 100, 0}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v < 0 || v > 100 {
				return nil, fmt.Errorf("bad -loss-ge value %q in tuple %q (want percent 0..100)", f, part)
			}
			vals[i] = v
		}
		if vals[0] > 0 && vals[1] == 0 {
			return nil, fmt.Errorf("bad -loss-ge tuple %q: pBG = 0 makes the bad state absorbing", part)
		}
		t := geTuple{name: "ge" + strings.ReplaceAll(part, ":", "-")}
		t.ge.GE = netem.LossGE{
			PGoodBad: vals[0] / 100, PBadGood: vals[1] / 100,
			LossBad: vals[2] / 100, LossGood: vals[3] / 100,
		}
		tuples = append(tuples, t)
	}
	var out []runner.Variant
	for _, base := range vs {
		for _, t := range tuples {
			name := t.name
			if base.Name != "" {
				name = base.Name + "/" + name
			}
			p := base.Params
			p.Impair.GE = t.ge.GE
			out = append(out, runner.Variant{Name: name, Params: p})
		}
	}
	return out, nil
}
