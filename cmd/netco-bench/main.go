// Command netco-bench regenerates the paper's evaluation (§V): Table I
// and Figures 4–8, printing measured values side by side with the
// published ones.
//
// Usage:
//
//	netco-bench [-table1] [-fig4] [-fig5] [-fig6] [-fig7] [-fig8] [-all]
//	            [-scale] [-hybrid] [-churn] [-parallel n] [-full] [-quick] [-seed n]
//	            [-hybrid-arity k] [-hybrid-flows-per-host n] [-hybrid-monitored n]
//	            [-hybrid-promote-rho r] [-hybrid-build-budget-ms b]
//	            [-churn-arity k] [-churn-rate a] [-churn-workers n]
//	            [-cpuprofile f] [-memprofile f] [-json f]
//
// Without selection flags, -all is assumed. -full uses the paper's
// methodology (10 s runs, 10 per direction); -quick uses smoke-test
// durations. -cpuprofile/-memprofile write pprof profiles of the run;
// -json writes every headline metric to a machine-readable file (the
// BENCH_*.json snapshots in the repo root are produced this way).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"netco"
	netmetrics "netco/internal/metrics"
	"netco/internal/runner"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netco-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table1 = flag.Bool("table1", false, "reproduce Table I")
		fig4   = flag.Bool("fig4", false, "reproduce Fig. 4 (TCP throughput)")
		fig5   = flag.Bool("fig5", false, "reproduce Fig. 5 (UDP throughput)")
		fig6   = flag.Bool("fig6", false, "reproduce Fig. 6 (throughput vs loss, Central3)")
		fig7   = flag.Bool("fig7", false, "reproduce Fig. 7 (ping RTT)")
		fig8   = flag.Bool("fig8", false, "reproduce Fig. 8 (jitter vs packet size)")
		arch   = flag.Bool("arch", false, "extension: compare-placement architectures (Central3/Inline3/POX3)")
		ksweep = flag.Bool("ksweep", false, "extension: redundancy sweep k=1..7 (Central)")
		dos    = flag.Bool("dos", false, "extension: DoS attacks vs the §IV defences")
		scale  = flag.Bool("scale", false, "extension: parallel-engine scaling benchmark (fat-tree cross-pod UDP, partition sweep; BENCH_5.json)")
		hybrid = flag.Bool("hybrid", false, "extension: hybrid fluid/packet traffic engine (1k-switch fluid fat tree, 100k+ flows, packet-exact combiner region; BENCH_6.json)")
		churn  = flag.Bool("churn", false, "extension: churn-scale flow lifecycle engine (arity-90 fluid fat tree, 1M+ lifecycle events per sim-second; BENCH_10.json)")
		impair = flag.Bool("impair", false, "extension: UDP delivery with the netem impairment pipeline (Gilbert-Elliott loss, duplication, corruption, reordering) on every trunk")

		impLoss    = flag.Float64("impair-loss", 1, "impair section: i.i.d. trunk loss percent")
		impGEp     = flag.Float64("impair-ge-p", 1, "impair section: Gilbert-Elliott good→bad probability, percent")
		impGEr     = flag.Float64("impair-ge-r", 25, "impair section: Gilbert-Elliott bad→good probability, percent")
		impDup     = flag.Float64("impair-dup", 0.5, "impair section: trunk duplication percent")
		impCorrupt = flag.Float64("impair-corrupt", 0.2, "impair section: trunk bit-corruption percent")
		impReoMS   = flag.Float64("impair-reorder-ms", 1, "impair section: reorder jitter in ms (25% of packets)")

		hybArity     = flag.Int("hybrid-arity", 0, "override the hybrid fat-tree arity (0 = scenario default; 90 with -hybrid-flows-per-host 6 is the BENCH_8 10k-switch/1M-flow point)")
		hybFlows     = flag.Int("hybrid-flows-per-host", 0, "override the hybrid flows-per-host fan-out (0 = scenario default)")
		hybMonitored = flag.Int("hybrid-monitored", 0, "override how many hybrid flows are monitored through the compare region (0 = scenario default)")
		hybRho       = flag.Float64("hybrid-promote-rho", 0, "bottleneck utilisation that promotes a hybrid fluid flow to packets (0 = promotion by region crossing only)")
		hybBudgetMS  = flag.Float64("hybrid-build-budget-ms", 0, "fail if the hybrid build (topo+wire+flows) exceeds this many milliseconds (0 = no ceiling; regression guard for make hybrid-scale-smoke)")

		churnArity   = flag.Int("churn-arity", 0, "override the churn fat-tree arity (0 = 90, the BENCH_10 point)")
		churnRate    = flag.Float64("churn-rate", 0, "override the churn arrival rate in flows per sim-second (0 = BENCH_10 default)")
		churnWorkers = flag.Int("churn-workers", 0, "override the churn parallel-settle worker count (0 = one per core; digest is checked against a serial run either way)")
		all          = flag.Bool("all", false, "reproduce everything")
		full         = flag.Bool("full", false, "paper-faithful durations (10s × 10 runs)")
		quick        = flag.Bool("quick", false, "smoke-test durations")
		seed         = flag.Int64("seed", 1, "simulation seed")
		serial       = flag.Bool("serial", false, "run scenarios sequentially (default: one worker per core)")
		para         = flag.Int("parallel", 0, "run each simulation on the parallel engine with this many partitions (0/1 = serial engine; results are bit-identical)")
		csvDir       = flag.String("csv", "", "also write each figure's data as CSV files into this directory")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (post-GC) at exit to this file")
		jsonPath   = flag.String("json", "", "write all headline metrics as JSON to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// metrics accumulates every headline number printed below, keyed
	// section.scenario.quantity, for the -json report.
	metrics := map[string]float64{}

	if !(*table1 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *arch || *ksweep || *dos || *scale || *hybrid || *churn || *impair) {
		*all = true
	}

	p := netco.DefaultParams()
	if *full {
		p = p.PaperFaithful()
	}
	if *quick {
		p = p.Quick()
	}
	p.Seed = *seed
	p.Partitions = *para

	workers := runtime.GOMAXPROCS(0)
	if *serial {
		workers = 1
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	start := time.Now()
	if *all || *fig4 {
		fmt.Println("== Fig. 4: TCP throughput ==")
		results := parallelMap(workers, netco.AllScenarios, func(s netco.Scenario) netco.TCPResult {
			return netco.RunTCP(p, s)
		})
		rows := [][]string{{"scenario", "mbps", "fast_retransmits", "timeouts", "dup_acks"}}
		for _, r := range results {
			fmt.Printf("  %-10s %7.1f Mbit/s   (fast-rtx %d, timeouts %d, dup-acks %d)\n",
				r.Scenario, r.Mbps, r.FastRetransmits, r.Timeouts, r.DupAcks)
			metrics["fig4."+r.Scenario.String()+".tcp_mbps"] = r.Mbps
			rows = append(rows, []string{r.Scenario.String(), f1(r.Mbps),
				strconv.FormatUint(r.FastRetransmits, 10), strconv.FormatUint(r.Timeouts, 10),
				strconv.FormatUint(r.DupAcks, 10)})
		}
		if err := writeCSV(*csvDir, "fig4.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *fig5 {
		fmt.Println("== Fig. 5: max UDP throughput at <0.5% loss ==")
		results := parallelMap(workers, netco.AllScenarios, func(s netco.Scenario) netco.UDPMaxResult {
			return netco.RunUDPMax(p, s)
		})
		rows := [][]string{{"scenario", "mbps", "loss"}}
		for _, r := range results {
			fmt.Printf("  %-10s %7.1f Mbit/s   (loss %.3f%%)\n", r.Scenario, r.Mbps, r.Loss*100)
			metrics["fig5."+r.Scenario.String()+".udp_mbps"] = r.Mbps
			rows = append(rows, []string{r.Scenario.String(), f1(r.Mbps), fmt.Sprintf("%.5f", r.Loss)})
		}
		if err := writeCSV(*csvDir, "fig5.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *fig6 {
		fmt.Println("== Fig. 6: throughput vs loss rate (Central3) ==")
		fmt.Printf("  %10s %12s %8s %10s\n", "offered", "achieved", "loss", "jitter")
		rows := [][]string{{"offered_mbps", "achieved_mbps", "loss", "jitter_us"}}
		for _, pt := range netco.RunFig6(p, nil) {
			fmt.Printf("  %7.0f Mb %9.1f Mb %7.3f%% %10v\n",
				pt.OfferedMbps, pt.AchievedMbps, pt.Loss*100, pt.Jitter)
			key := fmt.Sprintf("fig6.offered%.0f", pt.OfferedMbps)
			metrics[key+".achieved_mbps"] = pt.AchievedMbps
			metrics[key+".loss"] = pt.Loss
			rows = append(rows, []string{f1(pt.OfferedMbps), f1(pt.AchievedMbps),
				fmt.Sprintf("%.5f", pt.Loss), f1(float64(pt.Jitter.Microseconds()))})
		}
		if err := writeCSV(*csvDir, "fig6.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *fig7 {
		fmt.Println("== Fig. 7: ping round-trip time ==")
		results := parallelMap(workers, netco.TableScenarios, func(s netco.Scenario) netco.PingScenarioResult {
			return netco.RunPing(p, s)
		})
		rows := [][]string{{"scenario", "avg_rtt_ms", "min_rtt_ms", "max_rtt_ms"}}
		for _, r := range results {
			fmt.Printf("  %-10s avg %8.3f ms  (min %.3f, max %.3f; %d/%d replies)\n",
				r.Scenario, ms(r.AvgRTT), ms(r.MinRTT), ms(r.MaxRTT), r.Received, r.Sent)
			metrics["fig7."+r.Scenario.String()+".rtt_ms"] = ms(r.AvgRTT)
			rows = append(rows, []string{r.Scenario.String(),
				fmt.Sprintf("%.4f", ms(r.AvgRTT)), fmt.Sprintf("%.4f", ms(r.MinRTT)), fmt.Sprintf("%.4f", ms(r.MaxRTT))})
		}
		if err := writeCSV(*csvDir, "fig7.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *fig8 {
		fmt.Println("== Fig. 8: jitter for varying packet sizes ==")
		series8 := parallelMap(workers, netco.TableScenarios, func(s netco.Scenario) []netco.JitterPoint {
			return netco.RunJitter(p, s, nil)
		})
		rows := [][]string{{"scenario", "payload_bytes", "jitter_us"}}
		for _, series := range series8 {
			fmt.Printf("  %-10s", series[0].Scenario)
			for _, pt := range series {
				fmt.Printf("  %4dB:%7v", pt.PayloadSize, pt.Jitter)
				metrics[fmt.Sprintf("fig8.%s.%dB.jitter_us", pt.Scenario, pt.PayloadSize)] = float64(pt.Jitter.Microseconds())
				rows = append(rows, []string{pt.Scenario.String(),
					strconv.Itoa(pt.PayloadSize), f1(float64(pt.Jitter.Microseconds()))})
			}
			fmt.Println()
		}
		if err := writeCSV(*csvDir, "fig8.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *arch {
		fmt.Println("== Extension: compare placement at k=3 (§IX alternative architectures) ==")
		for _, r := range netco.RunArchitectureComparison(p) {
			fmt.Printf("  %-10s tcp %6.1f Mbit/s   udp %6.1f Mbit/s   rtt %.3f ms\n",
				r.Scenario, r.TCPMbps, r.UDPMbps, ms(r.AvgRTT))
			metrics["arch."+r.Scenario.String()+".tcp_mbps"] = r.TCPMbps
			metrics["arch."+r.Scenario.String()+".udp_mbps"] = r.UDPMbps
		}
		fmt.Println()
	}
	if *all || *ksweep {
		fmt.Println("== Extension: redundancy sweep (Central, k = routers in parallel) ==")
		fmt.Printf("  %2s %10s %12s %12s %10s\n", "k", "tolerates", "tcp Mbit/s", "udp Mbit/s", "rtt ms")
		for _, pt := range netco.RunKSweep(p, nil) {
			fmt.Printf("  %2d %10d %12.1f %12.1f %10.3f\n",
				pt.K, pt.Tolerated, pt.TCPMbps, pt.UDPMbps, ms(pt.AvgRTT))
			metrics[fmt.Sprintf("ksweep.k%d.tcp_mbps", pt.K)] = pt.TCPMbps
		}
		fmt.Println()
	}
	if *all || *dos {
		fmt.Println("== Extension: DoS attacks vs the §IV defences (Central3, 100 Mbit/s benign UDP) ==")
		r := netco.RunDoS(p)
		fmt.Printf("  no attacker:                         %6.1f Mbit/s\n", r.BaselineMbps)
		fmt.Printf("  replaying router, port blocking on:  %6.1f Mbit/s (%d blocks advised)\n", r.ReplayMbps, r.ReplayBlocks)
		fmt.Printf("  60 kpps forged flood, isolated bufs: %6.1f Mbit/s (%d flood copies quota-dropped)\n", r.FloodIsolatedMbps, r.QuotaDrops)
		fmt.Printf("  60 kpps forged flood, shared buffer: %6.1f Mbit/s\n", r.FloodSharedMbps)
		metrics["dos.baseline_mbps"] = r.BaselineMbps
		metrics["dos.replay_mbps"] = r.ReplayMbps
		metrics["dos.flood_isolated_mbps"] = r.FloodIsolatedMbps
		metrics["dos.flood_shared_mbps"] = r.FloodSharedMbps
		fmt.Println()
	}
	if *scale {
		const arity = 8 // 12 co-location units: 8 pods + 4 core groups
		dur := 150 * time.Millisecond
		if *quick {
			dur = 50 * time.Millisecond
		}
		cores := runtime.NumCPU()
		fmt.Printf("== Extension: parallel-engine scaling (%d-ary fat tree, cross-pod UDP, %d core(s)) ==\n", arity, cores)
		metrics["scale.cores"] = float64(cores)
		rows := [][]string{{"partitions", "events", "wall_s", "events_per_sec", "speedup"}}
		var serialRate float64
		var serialDigest string
		for _, parts := range []int{1, 2, 4, 8, 12} {
			ps := p
			ps.Partitions = parts
			wall := time.Now()
			r := netco.RunScale(ps, arity, dur)
			secs := time.Since(wall).Seconds()
			rate := float64(r.Events) / secs
			if parts == 1 {
				serialRate, serialDigest = rate, r.Digest
			} else if r.Digest != serialDigest {
				return fmt.Errorf("scale: partitions=%d diverged from serial digest", parts)
			}
			speedup := rate / serialRate
			fmt.Printf("  partitions=%-2d  %9d events in %6.2fs  %12.0f ev/s  speedup %.2fx\n",
				r.Partitions, r.Events, secs, rate, speedup)
			key := fmt.Sprintf("scale.partitions%d", parts)
			metrics[key+".events_per_sec"] = rate
			metrics[key+".speedup"] = speedup
			rows = append(rows, []string{strconv.Itoa(parts), strconv.FormatUint(r.Events, 10),
				fmt.Sprintf("%.3f", secs), fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.3f", speedup)})
		}
		fmt.Println("  digests bit-identical across all partition counts")
		if err := writeCSV(*csvDir, "scale.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *hybrid {
		// BENCH_6 workload: a 30-ary fluid fat tree (1125 switches,
		// 6750 hosts, 101250 flows) with 8 monitored flows expanded to
		// real datagrams through the packet-exact combiner region. The
		// 8×15 Mbit/s region load sits at ~46% of the compare stage's
		// copy budget (k=3 × 15 µs per copy), so the region stays
		// line-rate while the fabric is pure rate processes.
		hp := netco.DefaultHybridParams()
		hp.Arity = 30
		hp.FlowsPerHost = 15
		hp.FlowDemand = 15e6
		hp.CrossFlows = 8
		hp.Duration = time.Second
		hp.Epoch = 10 * time.Millisecond
		hp.SwapAt = 500 * time.Millisecond
		if *quick {
			hp = netco.DefaultHybridParams()
		}
		// Sizing overrides: defaults (0) leave the BENCH_6 scenario —
		// and its digest — untouched.
		if *hybArity > 0 {
			hp.Arity = *hybArity
		}
		if *hybFlows > 0 {
			hp.FlowsPerHost = *hybFlows
		}
		if *hybMonitored > 0 {
			hp.CrossFlows = *hybMonitored
		}
		if *hybRho > 0 {
			hp.PromoteRho = *hybRho
		}
		fmt.Printf("== Extension: hybrid fluid/packet engine (%d-ary fat tree) ==\n", hp.Arity)
		wall := time.Now()
		r := netco.RunHybrid(p, hp)
		secs := time.Since(wall).Seconds()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		peakHeapMB := float64(mem.HeapSys-mem.HeapReleased) / (1 << 20)
		r2 := netco.RunHybrid(p, hp)
		if r2.Digest != r.Digest {
			return fmt.Errorf("hybrid: digest diverged across identical runs")
		}
		buildMS := r.BuildTopoMS + r.BuildWireMS + r.BuildFlowsMS
		if *hybBudgetMS > 0 && buildMS > *hybBudgetMS {
			return fmt.Errorf("hybrid: build took %.0f ms (topo %.0f + wire %.0f + flows %.0f), over the %.0f ms budget",
				buildMS, r.BuildTopoMS, r.BuildWireMS, r.BuildFlowsMS, *hybBudgetMS)
		}
		fmt.Printf("  %d switches, %d hosts, %d flows (%d through the compare region), region ball %d nodes\n",
			r.Switches, r.Hosts, r.Flows, r.CrossFlows, r.RegionNodes)
		fmt.Printf("  build %.0f ms (topo %.0f, wire %.0f, flows %.0f); peak heap %.0f MiB\n",
			buildMS, r.BuildTopoMS, r.BuildWireMS, r.BuildFlowsMS, peakHeapMB)
		fmt.Printf("  %d events, %d settles, %d promotions / %d demotions (%d by congestion) in %.2fs wall\n",
			r.Events, r.Settles, r.Promotions, r.Demotions, r.CongestionPromotions, secs)
		fmt.Printf("  fluid goodput %.1f Mbit/s aggregate; projected pure-packet events %.2e → ratio %.0fx\n",
			r.FluidDeliveredBits/hp.Duration.Seconds()/1e6, r.ProjectedPacketEvents, r.EventRatio)
		fmt.Println("  digest bit-identical across repeated runs")
		metrics["hybrid.arity"] = float64(r.Arity)
		metrics["hybrid.switches"] = float64(r.Switches)
		metrics["hybrid.hosts"] = float64(r.Hosts)
		metrics["hybrid.flows"] = float64(r.Flows)
		metrics["hybrid.cross_flows"] = float64(r.CrossFlows)
		metrics["hybrid.region_nodes"] = float64(r.RegionNodes)
		metrics["hybrid.events"] = float64(r.Events)
		metrics["hybrid.settles"] = float64(r.Settles)
		metrics["hybrid.promotions"] = float64(r.Promotions)
		metrics["hybrid.demotions"] = float64(r.Demotions)
		metrics["hybrid.congestion_promotions"] = float64(r.CongestionPromotions)
		metrics["hybrid.build_topo_ms"] = r.BuildTopoMS
		metrics["hybrid.build_wire_ms"] = r.BuildWireMS
		metrics["hybrid.build_flows_ms"] = r.BuildFlowsMS
		metrics["hybrid.peak_heap_mb"] = peakHeapMB
		metrics["hybrid.fluid_goodput_mbps"] = r.FluidDeliveredBits / hp.Duration.Seconds() / 1e6
		metrics["hybrid.projected_packet_events"] = r.ProjectedPacketEvents
		metrics["hybrid.event_ratio"] = r.EventRatio
		metrics["hybrid.wall_s"] = secs
		rows := [][]string{
			{"switches", "hosts", "flows", "cross_flows", "events", "settles", "event_ratio", "wall_s"},
			{strconv.Itoa(r.Switches), strconv.Itoa(r.Hosts), strconv.Itoa(r.Flows),
				strconv.Itoa(r.CrossFlows), strconv.FormatUint(r.Events, 10),
				strconv.FormatUint(r.Settles, 10), fmt.Sprintf("%.1f", r.EventRatio),
				fmt.Sprintf("%.3f", secs)},
		}
		if err := writeCSV(*csvDir, "hybrid.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *churn {
		// BENCH_10 workload: the arity-90 fat tree (10125 switches,
		// 182250 hosts) under an open M/G/∞ lifecycle at 600k flow
		// arrivals per sim-second. Mean flow lifetime is 8·size/demand
		// = 20 ms, so steady state holds ~12k concurrent flows while
		// arrivals+departures together clear 1M lifecycle events per
		// simulated second — the tentpole target. The digest is checked
		// against a serial-settle run, so the headline numbers come
		// from a configuration whose determinism was just proven.
		hp := netco.DefaultHybridParams()
		hp.Arity = 90
		hp.FlowDemand = 15e6
		hp.Duration = time.Second
		hp.Epoch = 10 * time.Millisecond
		hp.ChurnArrivals = 600_000
		hp.ChurnMeanBytes = 37_500
		hp.ChurnParetoFrac = 0.3
		hp.ChurnCrossFrac = 0.02
		if *quick {
			hp.Arity = 10
			hp.Duration = 250 * time.Millisecond
			hp.ChurnArrivals = 40_000
		}
		if *churnArity > 0 {
			hp.Arity = *churnArity
		}
		if *churnRate > 0 {
			hp.ChurnArrivals = *churnRate
		}
		workers := runtime.GOMAXPROCS(0)
		if *churnWorkers > 0 {
			workers = *churnWorkers
		}
		fmt.Printf("== Extension: churn-scale flow lifecycle (%d-ary fat tree, %.0f arrivals/sim-s) ==\n",
			hp.Arity, hp.ChurnArrivals)
		hp.SettleWorkers = 1
		serialRun := netco.RunChurn(p, hp)
		hp.SettleWorkers = workers
		wall := time.Now()
		r := netco.RunChurn(p, hp)
		secs := time.Since(wall).Seconds()
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		peakHeapMB := float64(mem.HeapSys-mem.HeapReleased) / (1 << 20)
		if r.Digest != serialRun.Digest {
			return fmt.Errorf("churn: digest diverged between serial and %d-worker settle", workers)
		}
		fmt.Printf("  %d switches, %d hosts; build %.0f ms (topo %.0f, wire %.0f)\n",
			r.Switches, r.Hosts, r.BuildTopoMS+r.BuildWireMS, r.BuildTopoMS, r.BuildWireMS)
		fmt.Printf("  %d arrivals, %d departures, peak %d live, %d recycled, %d wheel expiries\n",
			r.Arrivals, r.Departures, r.PeakLive, r.Recycled, r.WheelExpired)
		fmt.Printf("  %d settles over %d components (%d workers); %.3g lifecycle events/sim-s\n",
			r.Settles, r.ComponentsSolved, workers, r.LifecycleEventsPerSimSec)
		fmt.Printf("  goodput %.1f Mbit/s aggregate; %.2fs wall, peak heap %.0f MiB\n",
			r.DeliveredBits/hp.Duration.Seconds()/1e6, secs, peakHeapMB)
		fmt.Printf("  digest bit-identical: serial vs %d-worker settle\n", workers)
		metrics["churn.arity"] = float64(r.Arity)
		metrics["churn.switches"] = float64(r.Switches)
		metrics["churn.hosts"] = float64(r.Hosts)
		metrics["churn.arrivals"] = float64(r.Arrivals)
		metrics["churn.departures"] = float64(r.Departures)
		metrics["churn.peak_live"] = float64(r.PeakLive)
		metrics["churn.recycled_flows"] = float64(r.Recycled)
		metrics["churn.wheel_expired"] = float64(r.WheelExpired)
		metrics["churn.events"] = float64(r.Events)
		metrics["churn.settles"] = float64(r.Settles)
		metrics["churn.settle_components"] = float64(r.ComponentsSolved)
		metrics["churn.settle_workers"] = float64(workers)
		metrics["churn.arrivals_per_sim_s"] = r.ArrivalsPerSimSec
		metrics["churn.lifecycle_events_per_sim_s"] = r.LifecycleEventsPerSimSec
		metrics["churn.goodput_mbps"] = r.DeliveredBits / hp.Duration.Seconds() / 1e6
		metrics["churn.build_topo_ms"] = r.BuildTopoMS
		metrics["churn.build_wire_ms"] = r.BuildWireMS
		metrics["churn.wall_s"] = secs
		metrics["churn.peak_heap_mb"] = peakHeapMB
		rows := [][]string{
			{"switches", "hosts", "arrivals", "departures", "peak_live", "recycled",
				"settles", "components", "lifecycle_events_per_sim_s", "wall_s", "peak_heap_mb"},
			{strconv.Itoa(r.Switches), strconv.Itoa(r.Hosts),
				strconv.FormatUint(r.Arrivals, 10), strconv.FormatUint(r.Departures, 10),
				strconv.Itoa(r.PeakLive), strconv.FormatUint(r.Recycled, 10),
				strconv.FormatUint(r.Settles, 10), strconv.FormatUint(r.ComponentsSolved, 10),
				fmt.Sprintf("%.0f", r.LifecycleEventsPerSimSec),
				fmt.Sprintf("%.3f", secs), fmt.Sprintf("%.0f", peakHeapMB)},
		}
		if err := writeCSV(*csvDir, "churn.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *impair {
		ip := p
		ip.Impair = netco.ImpairParams{
			LossPct:       *impLoss,
			GE:            netco.GilbertElliott(*impGEp/100, *impGEr/100),
			DupPct:        *impDup,
			CorruptPct:    *impCorrupt,
			ReorderPct:    25,
			ReorderJitter: time.Duration(*impReoMS * float64(time.Millisecond)),
		}
		fmt.Printf("== Extension: trunk impairments (loss %.2g%%, GE %.2g:%.2g%%, dup %.2g%%, corrupt %.2g%%, reorder %.2gms) ==\n",
			*impLoss, *impGEp, *impGEr, *impDup, *impCorrupt, *impReoMS)
		results := parallelMap(workers, netco.TableScenarios, func(s netco.Scenario) netco.ImpairResult {
			return netco.RunImpair(ip, s)
		})
		rows := [][]string{{"scenario", "delivered_frac", "goodput_mbps", "impair_drops", "corrupted", "duplicated", "reordered"}}
		for _, r := range results {
			fmt.Printf("  %-10s delivered %6.3f  goodput %6.1f Mbit/s  (wire: %d lost, %d corrupted, %d duplicated, %d reordered)\n",
				r.Scenario, r.DeliveredFrac, r.GoodputMbps,
				r.Counters.ImpairDrops, r.Counters.Corrupted, r.Counters.Duplicated, r.Counters.Reordered)
			key := "impair." + r.Scenario.String()
			metrics[key+".delivered_frac"] = r.DeliveredFrac
			metrics[key+".goodput_mbps"] = r.GoodputMbps
			metrics[key+".impair_drops"] = float64(r.Counters.ImpairDrops)
			metrics[key+".corrupted"] = float64(r.Counters.Corrupted)
			metrics[key+".duplicated"] = float64(r.Counters.Duplicated)
			metrics[key+".reordered"] = float64(r.Counters.Reordered)
			rows = append(rows, []string{r.Scenario.String(), fmt.Sprintf("%.4f", r.DeliveredFrac),
				f1(r.GoodputMbps), strconv.FormatUint(r.Counters.ImpairDrops, 10),
				strconv.FormatUint(r.Counters.Corrupted, 10), strconv.FormatUint(r.Counters.Duplicated, 10),
				strconv.FormatUint(r.Counters.Reordered, 10)})
		}
		if err := writeCSV(*csvDir, "impair.csv", rows); err != nil {
			return err
		}
		fmt.Println()
	}
	if *all || *table1 {
		fmt.Println("== Table I: average measurement results (measured vs paper) ==")
		rows := parallelMap(workers, netco.TableScenarios, func(s netco.Scenario) netco.Table1Row {
			return netco.Table1Row{
				Scenario: s,
				TCPMbps:  netco.RunTCP(p, s).Mbps,
				UDPMbps:  netco.RunUDPMax(p, s).Mbps,
				AvgRTT:   netco.RunPing(p, s).AvgRTT,
			}
		})
		fmt.Print(netco.FormatTable1(rows))
		csvRows := [][]string{{"scenario", "tcp_mbps", "udp_mbps", "rtt_ms"}}
		for _, r := range rows {
			csvRows = append(csvRows, []string{r.Scenario.String(), f1(r.TCPMbps), f1(r.UDPMbps),
				fmt.Sprintf("%.4f", ms(r.AvgRTT))})
			key := "table1." + r.Scenario.String()
			metrics[key+".tcp_mbps"] = r.TCPMbps
			metrics[key+".udp_mbps"] = r.UDPMbps
			metrics[key+".rtt_ms"] = ms(r.AvgRTT)
		}
		if err := writeCSV(*csvDir, "table1.csv", csvRows); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))

	if *jsonPath != "" {
		// The event-rate soak is the perf-trajectory headline (see
		// BENCH_1.json): simulated scheduler events per wall second on
		// the Central3 UDP workload.
		rate, cs := eventRate(p)
		metrics["events_per_sec"] = rate
		fmt.Printf("classifier: %d lookups, %.1f%% microflow hits, %d tuple searches (%d mask probes), %d misses, %d masks\n",
			cs.Lookups, cs.HitRate()*100, cs.TupleLookups, cs.MaskProbes, cs.Misses, cs.Masks)
		metrics["classifier.lookups"] = float64(cs.Lookups)
		metrics["classifier.microflow_hits"] = float64(cs.MicroflowHits)
		metrics["classifier.tuple_lookups"] = float64(cs.TupleLookups)
		metrics["classifier.mask_probes"] = float64(cs.MaskProbes)
		metrics["classifier.misses"] = float64(cs.Misses)
		metrics["classifier.masks"] = float64(cs.Masks)
		if cs.Lookups > 0 {
			metrics["classifier.hit_rate"] = cs.HitRate()
		}
		if err := writeJSON(*jsonPath, *seed, time.Since(start), metrics); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// eventRate measures the simulator's wall-clock event rate: a Central3
// testbed under 100 Mbit/s UDP, 250 simulated milliseconds, reported as
// scheduler events per wall second. This is the same workload as the
// repo-level BenchmarkEngineIngest. It also returns the flow-table
// classifier counters aggregated across every switch in the testbed.
func eventRate(p netco.Params) (float64, netmetrics.ClassifierStats) {
	tb := netco.BuildTestbed(p.TestbedParams(netco.Central3, nil))
	defer tb.Close()
	netco.NewUDPSink(tb.H2, 5001)
	src := netco.NewUDPSource(tb.H1, 4001, tb.H2.Endpoint(5001), netco.UDPSourceConfig{
		Rate: 100e6, PayloadSize: 1470,
	})
	src.Start()
	tb.Sched.RunFor(50 * time.Millisecond) // warm up flows and pools
	before := tb.Sched.Executed()
	wall := time.Now()
	tb.Sched.RunFor(250 * time.Millisecond)
	secs := time.Since(wall).Seconds()
	src.Stop()
	var cs netmetrics.ClassifierStats
	for _, sw := range tb.Routers {
		cs.Merge(sw.Table().Stats())
	}
	for _, sw := range tb.Edges {
		cs.Merge(sw.Table().Stats())
	}
	if secs <= 0 {
		return 0, cs
	}
	return float64(tb.Sched.Executed()-before) / secs, cs
}

// writeJSON dumps the headline metrics of the run in a stable,
// machine-readable form (keys sorted by encoding/json), stamped with
// the machine's CPU provenance so perf numbers in BENCH_*.json are
// interpretable after the fact.
func writeJSON(path string, seed int64, elapsed time.Duration, metrics map[string]float64) error {
	report := struct {
		Seed       int64              `json:"seed"`
		ElapsedMS  float64            `json:"elapsed_ms"`
		NumCPU     int                `json:"num_cpu"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Metrics    map[string]float64 `json:"metrics"`
	}{seed, float64(elapsed.Milliseconds()), runtime.NumCPU(), runtime.GOMAXPROCS(0), metrics}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// writeCSV writes rows to dir/name; a no-op when no -csv directory was
// given.
func writeCSV(dir, name string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// parallelMap runs fn over items with bounded concurrency, preserving
// order — a thin wrapper over runner.Map. Every simulation is
// self-contained and deterministic, so parallelism changes wall time
// only, never results.
func parallelMap[S, R any](workers int, items []S, fn func(S) R) []R {
	out, _ := runner.Map(context.Background(), workers, len(items), func(i int) (R, error) {
		return fn(items[i]), nil
	})
	return out
}
