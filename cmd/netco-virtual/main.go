// Command netco-virtual demonstrates the virtualized NetCo of §VII:
// instead of buying k physical routers per protected hop, flows are split
// over k VLAN-labelled disjoint paths through existing heterogeneous
// devices and recombined by an inband compare at the egress.
package main

import (
	"flag"
	"fmt"
	"os"

	"netco"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netco-virtual:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	p := netco.DefaultParams()
	p.Seed = *seed
	r := netco.RunVirtual(p)

	fmt.Println("Virtualized NetCo (paper §VII): path redundancy instead of hardware redundancy")
	fmt.Println()
	fmt.Println("-- prevention: 3 disjoint paths, one device rewrites headers --")
	fmt.Printf("  datagrams sent/delivered:     %d / %d\n", r.PreventSent, r.PreventDelivered)
	fmt.Printf("  tampered copies suppressed:   %d\n", r.PreventSuppressed)
	fmt.Println()
	fmt.Println("-- detection: 2 disjoint paths, one device drops traffic --")
	fmt.Printf("  datagrams sent/delivered:     %d / %d (detect-only: no availability cost)\n",
		r.DetectSent, r.DetectDelivered)
	fmt.Printf("  detection alarms:             %d (first at t=%v)\n", r.DetectAlarms, r.FirstDetectionAt)
	fmt.Println()
	fmt.Println("-- cost: inband compare + k× path bandwidth, zero extra hardware --")
	fmt.Printf("  bare path goodput:            %.1f Mbit/s\n", r.BaselineMbps)
	fmt.Printf("  3-path combined goodput:      %.1f Mbit/s\n", r.CombinedMbps)
	fmt.Printf("  bandwidth amplification:      %.0f×\n", r.BandwidthCost)
	return nil
}
