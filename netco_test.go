package netco_test

import (
	"testing"
	"time"

	"netco"
)

// TestFacadeQuickstart exercises the public API end to end: build a
// combiner with one compromised router, push traffic, assert the
// combiner's guarantee — the README example, as a test.
func TestFacadeQuickstart(t *testing.T) {
	sched := netco.NewScheduler()
	net := netco.NewNetwork(sched)
	link := netco.LinkConfig{Bandwidth: 500e6, Delay: 16 * time.Microsecond, QueueLimit: 100}

	comb := netco.BuildCombiner(net, netco.CombinerSpec{
		K:    3,
		Mode: netco.CombinerCentral,
		Compare: netco.CompareNodeConfig{
			Engine:      netco.CompareConfig{HoldTimeout: 20 * time.Millisecond},
			PerCopyCost: 15 * time.Microsecond,
		},
		EdgeProcDelay: 2 * time.Microsecond,
		RouterLink:    link,
		CompareLink:   netco.LinkConfig{Bandwidth: 2e9, Delay: 16 * time.Microsecond, QueueLimit: 400},
	}, func(i int) *netco.Switch {
		return netco.NewSwitch(sched, netco.SwitchConfig{Name: string(rune('a' + i)), ProcDelay: 2 * time.Microsecond})
	})
	defer comb.Close()

	h1 := netco.NewHost(sched, "h1", netco.HostMAC(1), netco.HostIP(1), netco.HostConfig{EchoResponder: true})
	h2 := netco.NewHost(sched, "h2", netco.HostMAC(2), netco.HostIP(2), netco.HostConfig{EchoResponder: true})
	net.Add(h1)
	net.Add(h2)
	comb.AttachHost(net, netco.SideLeft, h1, 0, h1.MAC(), link)
	comb.AttachHost(net, netco.SideRight, h2, 0, h2.MAC(), link)

	comb.Routers[1].SetBehavior(netco.Chain{
		&netco.Drop{Match: netco.MatchAll(), Probability: 0.5, Rng: netco.NewRNG(42)},
		&netco.Modify{Match: netco.MatchAll(), Rewrite: []netco.Action{netco.SetVLANVID(666)}},
	})

	sink := netco.NewUDPSink(h2, 9000)
	src := netco.NewUDPSource(h1, 9000, h2.Endpoint(9000), netco.UDPSourceConfig{
		Rate: 20e6, PayloadSize: 1000,
	})
	src.Start()
	sched.RunFor(200 * time.Millisecond)
	src.Stop()
	sched.RunFor(100 * time.Millisecond)

	st := sink.Stats()
	if st.Unique != src.Sent || st.Duplicates != 0 || st.Corrupted != 0 {
		t.Fatalf("combiner guarantee violated: unique=%d/%d dups=%d corrupted=%d",
			st.Unique, src.Sent, st.Duplicates, st.Corrupted)
	}
}

// TestFacadeDeterminism runs the same facade-level simulation twice and
// requires identical results.
func TestFacadeDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		p := netco.DefaultParams().Quick()
		r := netco.RunTCP(p, netco.Central3)
		u := netco.RunUDPMax(p, netco.Central3)
		return uint64(r.FastRetransmits), u.Mbps
	}
	fr1, m1 := run()
	fr2, m2 := run()
	if fr1 != fr2 || m1 != m2 {
		t.Fatalf("facade runs diverge: (%d,%f) vs (%d,%f)", fr1, m1, fr2, m2)
	}
}

// TestPaperTable1Published sanity-checks the embedded published values.
func TestPaperTable1Published(t *testing.T) {
	if len(netco.PaperTable1) != 5 {
		t.Fatalf("PaperTable1 rows = %d, want 5", len(netco.PaperTable1))
	}
	if netco.PaperTable1[0].TCPMbps != 474 {
		t.Fatalf("Linespeed paper TCP = %v, want 474", netco.PaperTable1[0].TCPMbps)
	}
}
