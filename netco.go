// Package netco is the public API of the NetCo reproduction: robust
// network combiners that build reliable routing from unreliable routers
// (Feldmann et al., "NetCo: Reliable Routing With Unreliable Routers",
// DSN 2016).
//
// The idea, borrowed from cryptography's robust combiners: replace each
// untrusted router with a trusted hub that replicates traffic to k
// untrusted routers in parallel, and a trusted compare that forwards a
// packet only once a majority of the routers delivered it. Two routers
// detect misbehaviour; three prevent it.
//
// The package re-exports the library's layers:
//
//   - simulation substrate: Scheduler (virtual time), Network, LinkConfig;
//   - data plane: Switch (OpenFlow 1.0), Host, traffic generators;
//   - the combiner itself: BuildCombiner, Hub, CompareNode, VirtualEdge;
//   - the attacker model: Reroute, Mirror, Modify, Drop, Replay, Flood;
//   - the paper's evaluation: RunTable1, RunFig4 … RunFig8, RunCaseStudy,
//     RunVirtual, driven by a single calibrated Params.
//
// See examples/quickstart for a complete program.
package netco

import (
	"context"
	"time"

	"netco/internal/adversary"
	"netco/internal/controller"
	"netco/internal/core"
	"netco/internal/experiment"
	"netco/internal/netem"
	"netco/internal/openflow"
	"netco/internal/packet"
	"netco/internal/runner"
	"netco/internal/sim"
	"netco/internal/switching"
	"netco/internal/topo"
	"netco/internal/traffic"
)

// Simulation substrate.
type (
	// Scheduler is the deterministic virtual-time event scheduler every
	// simulation runs on.
	Scheduler = sim.Scheduler
	// RNG is the seeded random source used wherever randomness is needed.
	RNG = sim.RNG
	// Network owns nodes and links and wires topologies.
	Network = netem.Network
	// LinkConfig sets a link's bandwidth, propagation delay and queue.
	LinkConfig = netem.LinkConfig
	// Node is anything attachable to a Network.
	Node = netem.Node
)

// NewScheduler returns a fresh virtual clock.
func NewScheduler() *Scheduler { return sim.NewScheduler() }

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// NewNetwork returns an empty network on the scheduler.
func NewNetwork(sched *Scheduler) *Network { return netem.New(sched) }

// Packets and addressing.
type (
	// Packet is a parsed network frame.
	Packet = packet.Packet
	// MAC is an Ethernet address; IPAddr an IPv4 address; Endpoint a
	// (MAC, IP, port) triple.
	MAC      = packet.MAC
	IPAddr   = packet.IPAddr
	Endpoint = packet.Endpoint
)

// HostMAC and HostIP derive deterministic host addresses from an index.
func HostMAC(n uint32) MAC   { return packet.HostMAC(n) }
func HostIP(n uint32) IPAddr { return packet.HostIP(n) }

// Data plane.
type (
	// Switch is an OpenFlow 1.0 switch (an untrusted router candidate).
	Switch = switching.Switch
	// SwitchConfig parameterises a Switch.
	SwitchConfig = switching.Config
	// Behavior is the hook a compromised switch runs instead of its
	// flow table.
	Behavior = switching.Behavior
	// Host is an end host with TCP/UDP/ICMP stacks.
	Host = traffic.Host
	// HostConfig parameterises a Host's receive stack.
	HostConfig = traffic.HostConfig
	// Legacy is a fixed-function router without a control plane (§IX:
	// the combiner extends to legacy routers); MACRouter is the
	// provisioning surface it shares with Switch.
	Legacy    = switching.Legacy
	MACRouter = switching.MACRouter
)

// NewSwitch creates an OpenFlow switch.
func NewSwitch(sched *Scheduler, cfg SwitchConfig) *Switch {
	return switching.New(sched, cfg)
}

// NewHost creates a host.
func NewHost(sched *Scheduler, name string, mac MAC, ip IPAddr, cfg HostConfig) *Host {
	return traffic.NewHost(sched, name, mac, ip, cfg)
}

// NewLegacy creates a fixed-function legacy router.
func NewLegacy(sched *Scheduler, name string, procDelay time.Duration, procQueue int) *Legacy {
	return switching.NewLegacy(sched, name, procDelay, procQueue)
}

// The combiner (the paper's contribution).
type (
	// Combiner is an assembled robust combiner (hub + k routers +
	// compare).
	Combiner = core.Combiner
	// CombinerSpec describes a combiner to build.
	CombinerSpec = core.CombinerSpec
	// CompareNodeConfig parameterises the data-plane compare.
	CompareNodeConfig = core.CompareNodeConfig
	// CompareConfig parameterises the compare decision engine.
	CompareConfig = core.Config
	// Hub is the trusted stateless replicator.
	Hub = core.Hub
	// CompareNode is the trusted majority-voting element.
	CompareNode = core.CompareNode
	// Alarm is a security event raised by a compare.
	Alarm = core.Alarm
	// VirtualEdge is one end of the §VII virtualized combiner.
	VirtualEdge = core.VirtualEdge
	// VirtualEdgeConfig parameterises a VirtualEdge.
	VirtualEdgeConfig = core.VirtualEdgeConfig
)

// Combiner modes and sides, re-exported.
const (
	CombinerCentral  = core.CombinerCentral
	CombinerDup      = core.CombinerDup
	CombinerSampling = core.CombinerSampling
	SideLeft         = core.SideLeft
	SideRight        = core.SideRight
)

// CompareMode selects how the compare decides two copies are the same
// packet.
type CompareMode = core.Mode

// Compare modes: full-frame memcmp, full-frame digest, or headers only.
const (
	CompareBitExact = core.ModeBitExact
	CompareHashed   = core.ModeHashed
	CompareHeader   = core.ModeHeader
)

// BuildCombiner assembles a robust combiner inside net; newRouter
// constructs untrusted router i. Attach the protected endpoints with
// Combiner.AttachHost.
func BuildCombiner(net *Network, spec CombinerSpec, newRouter func(i int) *Switch) *Combiner {
	return core.Build(net, spec, newRouter)
}

// NewHub creates a trusted replicator node.
func NewHub(sched *Scheduler, name string) *Hub { return core.NewHub(sched, name) }

// NewVirtualEdge creates one end of a virtualized combiner.
func NewVirtualEdge(sched *Scheduler, cfg VirtualEdgeConfig) *VirtualEdge {
	return core.NewVirtualEdge(sched, cfg)
}

// OpenFlow building blocks for flow rules and behaviors.
type (
	// Match is an OpenFlow 1.0 12-tuple match; Action a flow action;
	// FlowEntry one flow-table rule.
	Match     = openflow.Match
	Action    = openflow.Action
	FlowEntry = openflow.FlowEntry
)

// MatchAll returns the fully wildcarded match; narrow it with the
// With* builders (WithDlDst, WithInPort, ...).
func MatchAll() Match { return openflow.MatchAll() }

// Action constructors, re-exported from the openflow package.
func Output(port uint16) Action    { return openflow.Output(port) }
func SetVLANVID(vid uint16) Action { return openflow.SetVLANVID(vid) }
func StripVLAN() Action            { return openflow.StripVLAN() }
func SetDlSrc(mac MAC) Action      { return openflow.SetDlSrc(mac) }
func SetDlDst(mac MAC) Action      { return openflow.SetDlDst(mac) }
func SetNwSrc(ip IPAddr) Action    { return openflow.SetNwSrc(ip) }
func SetNwDst(ip IPAddr) Action    { return openflow.SetNwDst(ip) }
func SetNwTOS(tos uint8) Action    { return openflow.SetNwTOS(tos) }

// Attacker model (§II).
type (
	// Reroute misdirects matching packets; Mirror duplicates them to an
	// extra port; Modify rewrites headers; Drop discards; Replay
	// re-emits copies; Flood mass-generates unsolicited packets; Chain
	// composes behaviors.
	Reroute = adversary.Reroute
	Mirror  = adversary.Mirror
	Modify  = adversary.Modify
	Drop    = adversary.Drop
	Replay  = adversary.Replay
	Flood   = adversary.Flood
	Chain   = adversary.Chain
)

// Control-plane applications.
type (
	// Controller is the control-plane application interface; Conn the
	// per-switch handle it receives.
	Controller     = switching.Controller
	ControllerConn = switching.Conn
	// LearningSwitch is a classic L2 learning application; StaticRouter
	// installs declared MAC routes on connect; Monitor polls flow/port
	// statistics; CompareApp is the POX3-style controller-resident
	// compare.
	LearningSwitch = controller.LearningSwitch
	StaticRouter   = controller.StaticRouter
	Monitor        = controller.Monitor
	StatsSnapshot  = controller.StatsSnapshot
	CompareApp     = controller.CompareApp
	// L2Routing is a topology-aware shortest-path forwarding app built
	// on LLDP-style Discovery.
	L2Routing = controller.L2Routing
	Discovery = controller.Discovery
	PortID    = controller.PortID
)

// NewLearningSwitch returns a learning-switch application.
func NewLearningSwitch() *LearningSwitch { return controller.NewLearningSwitch() }

// NewStaticRouter returns a static MAC-routing application.
func NewStaticRouter() *StaticRouter { return controller.NewStaticRouter() }

// NewMonitor returns a stats poller, optionally wrapping a forwarding
// application.
func NewMonitor(sched *Scheduler, forward Controller) *Monitor {
	return controller.NewMonitor(sched, forward)
}

// NewL2Routing returns a shortest-path forwarding application with its
// own topology discovery.
func NewL2Routing(sched *Scheduler) *L2Routing { return controller.NewL2Routing(sched) }

// Traffic workloads.
type (
	// TCPFlow is an iperf-style bulk transfer; TCPConfig its knobs.
	TCPFlow   = traffic.TCPFlow
	TCPConfig = traffic.TCPConfig
	// UDPSource is a paced CBR sender; UDPSink the de-duplicating,
	// jitter-measuring receiver.
	UDPSource       = traffic.UDPSource
	UDPSourceConfig = traffic.UDPSourceConfig
	UDPSink         = traffic.UDPSink
	// Pinger runs ICMP echo sequences.
	Pinger       = traffic.Pinger
	PingerConfig = traffic.PingerConfig
)

// StartTCPFlow starts a bulk transfer between two hosts.
func StartTCPFlow(from, to *Host, srcPort, dstPort uint16, cfg TCPConfig) *TCPFlow {
	return traffic.StartTCPFlow(from, to, srcPort, dstPort, cfg)
}

// NewUDPSource creates a paced UDP sender on host.
func NewUDPSource(host *Host, srcPort uint16, dst Endpoint, cfg UDPSourceConfig) *UDPSource {
	return traffic.NewUDPSource(host, srcPort, dst, cfg)
}

// NewUDPSink attaches a measuring sink to a host port.
func NewUDPSink(host *Host, port uint16) *UDPSink { return traffic.NewUDPSink(host, port) }

// NewPinger creates an ICMP echo client on host.
func NewPinger(host *Host, dst Endpoint, cfg PingerConfig) *Pinger {
	return traffic.NewPinger(host, dst, cfg)
}

// Topologies.
type (
	// Testbed is the paper's Fig. 3 performance network; TestbedParams
	// its recipe.
	Testbed       = topo.Testbed
	TestbedParams = topo.TestbedParams
	// FatTree is the §VI datacenter fabric.
	FatTree       = topo.FatTree
	FatTreeParams = topo.FatTreeParams
	// Multipath is the §VII disjoint-path network.
	Multipath       = topo.Multipath
	MultipathParams = topo.MultipathParams
)

// BuildTestbed, BuildFatTree and BuildMultipath assemble the paper's
// topologies.
func BuildTestbed(p TestbedParams) *Testbed { return topo.BuildTestbed(p) }
func BuildFatTree(net *Network, p FatTreeParams) *FatTree {
	return topo.BuildFatTree(net, p)
}
func BuildMultipath(net *Network, p MultipathParams) *Multipath {
	return topo.BuildMultipath(net, p)
}

// Evaluation (the paper's §V, §VI, §VII).
type (
	// Params is the single calibrated parameter set behind every
	// experiment.
	Params = experiment.Params
	// Scenario selects one of the §V-A scenarios.
	Scenario = experiment.Scenario
	// Result types of the individual experiments.
	TCPResult          = experiment.TCPResult
	UDPMaxResult       = experiment.UDPMaxResult
	UDPPoint           = experiment.UDPPoint
	PingScenarioResult = experiment.PingScenarioResult
	JitterPoint        = experiment.JitterPoint
	Table1Row          = experiment.Table1Row
	CaseStudyResult    = experiment.CaseStudyResult
	CaseStudyOutcome   = experiment.CaseStudyOutcome
	VirtualResult      = experiment.VirtualResult
	KSweepPoint        = experiment.KSweepPoint
	DoSResult          = experiment.DoSResult
)

// Scenario constants, in the paper's order, plus the Inline3 extension
// (§IX's middlebox compare).
const (
	Linespeed = experiment.ScenLinespeed
	Central3  = experiment.ScenCentral3
	Central5  = experiment.ScenCentral5
	POX3      = experiment.ScenPOX3
	Dup3      = experiment.ScenDup3
	Dup5      = experiment.ScenDup5
	Inline3   = experiment.ScenInline3
)

// AllScenarios and TableScenarios re-export the figure scenario sets.
var (
	AllScenarios   = experiment.AllScenarios
	TableScenarios = experiment.TableScenarios
	// PaperTable1 holds the published Table I values for side-by-side
	// reporting.
	PaperTable1 = experiment.PaperTable1
)

// DefaultParams returns the calibration documented in DESIGN.md §4.
func DefaultParams() Params { return experiment.DefaultParams() }

// RunTCP measures one scenario's TCP throughput (Fig. 4).
func RunTCP(p Params, s Scenario) TCPResult { return experiment.RunTCP(p, s) }

// RunFig4 measures TCP throughput for all six scenarios.
func RunFig4(p Params) []TCPResult { return experiment.RunFig4(p) }

// RunUDPMax finds a scenario's maximum UDP rate at <0.5 % loss (Fig. 5).
func RunUDPMax(p Params, s Scenario) UDPMaxResult { return experiment.RunUDPMax(p, s) }

// RunFig5 measures UDP maxima for all six scenarios.
func RunFig5(p Params) []UDPMaxResult { return experiment.RunFig5(p) }

// RunFig6 sweeps offered load on Central3 (throughput↔loss, Fig. 6).
func RunFig6(p Params, rates []float64) []UDPPoint { return experiment.RunFig6(p, rates) }

// RunPing measures one scenario's echo RTT (Fig. 7).
func RunPing(p Params, s Scenario) PingScenarioResult { return experiment.RunPing(p, s) }

// RunFig7 measures RTT for the five Table I scenarios.
func RunFig7(p Params) []PingScenarioResult { return experiment.RunFig7(p) }

// RunJitter sweeps UDP packet sizes for one scenario (Fig. 8).
func RunJitter(p Params, s Scenario, sizes []int) []JitterPoint {
	return experiment.RunJitter(p, s, sizes)
}

// RunFig8 sweeps packet sizes for the five Table I scenarios.
func RunFig8(p Params) [][]JitterPoint { return experiment.RunFig8(p) }

// RunTable1 reproduces Table I.
func RunTable1(p Params) []Table1Row { return experiment.RunTable1(p) }

// FormatTable1 renders measured rows next to the paper's values.
func FormatTable1(rows []Table1Row) string { return experiment.FormatTable1(rows) }

// RunArchitectureComparison measures the three compare placements at
// k=3: out-of-band (Central3), inband middlebox (Inline3), controller
// (POX3).
func RunArchitectureComparison(p Params) []Table1Row {
	return experiment.RunArchitectureComparison(p)
}

// RunDoS measures the §II denial-of-service attacks against the §IV
// defences (port blocking, isolated buffers).
func RunDoS(p Params) DoSResult { return experiment.RunDoS(p) }

// RunKSweep measures Central combiners across parallelism values.
func RunKSweep(p Params, ks []int) []KSweepPoint { return experiment.RunKSweep(p, ks) }

// RunCaseStudy reproduces the §VI datacenter routing attack.
func RunCaseStudy(p Params) CaseStudyResult { return experiment.RunCaseStudy(p) }

// RunVirtual demonstrates the §VII virtualized combiner.
func RunVirtual(p Params) VirtualResult { return experiment.RunVirtual(p) }

// ScaleResult is one run of the fat-tree scaling workload.
type ScaleResult = experiment.ScaleResult

// RunScale drives cross-pod UDP over a k-ary fat tree, optionally split
// across the parallel engine's partitions (p.Partitions; bit-identical
// to serial). The scaling benchmark behind BENCH_5.json.
func RunScale(p Params, arity int, duration time.Duration) ScaleResult {
	return experiment.RunScale(p, arity, duration)
}

// HybridParams sizes one hybrid fluid/packet scenario; HybridResult is
// its outcome.
type (
	HybridParams = experiment.HybridParams
	HybridResult = experiment.HybridResult
)

// DefaultHybridParams returns the small smoke configuration of the
// hybrid engine.
func DefaultHybridParams() HybridParams { return experiment.DefaultHybridParams() }

// RunHybrid couples a fluid (rate-process) fat-tree fabric with a
// packet-exact combiner region in one serial simulation: million-flow
// scenarios at a small fraction of pure-packet event counts, with the
// compare neighbourhood still simulated frame by frame. The engine
// behind BENCH_6.json.
func RunHybrid(p Params, hp HybridParams) HybridResult {
	return experiment.RunHybrid(p, hp)
}

// ChurnResult is one churn-engine run's outcome.
type ChurnResult = experiment.ChurnResult

// RunChurn drives an open flow arrival/departure workload over a
// fat-tree fluid fabric: arena-recycled flow records, wheel-timed
// departures and parallel per-component settles, deterministic at any
// SettleWorkers count (HybridParams.Churn* fields size the workload).
// The engine behind BENCH_10.json.
func RunChurn(p Params, hp HybridParams) ChurnResult {
	return experiment.RunChurn(p, hp)
}

// Parallel sweeps (cmd/netco-sweep is the CLI over these).
type (
	// ExperimentKind selects a schedulable experiment unit; Run executes
	// one as a pure function of (Params, Scenario, seed).
	ExperimentKind = experiment.Kind
	// ExperimentResult is one run's flat, mergeable outcome.
	ExperimentResult = experiment.Result
	// SweepJob is one (kind, params, scenario, seed) run; SweepGrid the
	// cross product a sweep expands; SweepReport the merged artifact.
	SweepJob     = runner.Job
	SweepGrid    = runner.Grid
	SweepVariant = runner.Variant
	SweepReport  = runner.Report
)

// Experiment kinds, re-exported.
const (
	ExperimentTCP    = experiment.KindTCP
	ExperimentUDP    = experiment.KindUDP
	ExperimentPing   = experiment.KindPing
	ExperimentJitter = experiment.KindJitter
	ExperimentHybrid = experiment.KindHybrid
	ExperimentChaos  = experiment.KindChaos
	ExperimentImpair = experiment.KindImpair
	ExperimentChurn  = experiment.KindChurn
)

// Link impairments: the netem vocabulary (correlated and
// Gilbert-Elliott loss, corruption, duplication, jitter reordering) as
// a seeded deterministic pipeline on every trunk (Params.Impair).
type (
	ImpairParams   = experiment.ImpairParams
	ImpairResult   = experiment.ImpairResult
	ImpairCounters = experiment.ImpairCounters
	// LossGE parameterises the 2-state Gilbert-Elliott loss model.
	LossGE = netem.LossGE
)

// GilbertElliott builds the classic Gilbert-Elliott loss model (lose
// everything in the bad state, nothing in the good state) from the two
// transition probabilities.
func GilbertElliott(pGoodBad, pBadGood float64) LossGE {
	return LossGE{PGoodBad: pGoodBad, PBadGood: pBadGood, LossBad: 1}
}

// RunImpair measures UDP delivery with the Params.Impair pipeline on
// every trunk link — the goodput-surface unit behind impairment sweeps.
func RunImpair(p Params, s Scenario) ImpairResult { return experiment.RunImpair(p, s) }

// RunExperiment executes one experiment kind in isolation: a fresh
// scheduler, pools and engines per call, safe to invoke from many
// goroutines at once.
func RunExperiment(k ExperimentKind, p Params, s Scenario, seed int64) ExperimentResult {
	return experiment.Run(k, p, s, seed)
}

// Sweep fans jobs out across a worker pool of isolated simulations
// (workers <= 0 uses GOMAXPROCS) and returns the deterministic report.
func Sweep(ctx context.Context, workers int, jobs []SweepJob) SweepReport {
	return runner.Sweep(ctx, workers, jobs)
}
